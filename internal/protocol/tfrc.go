package protocol

import (
	"fmt"
	"math"
)

// TFRC is an equation-based protocol in the style of TCP-Friendly Rate
// Control (the equation-based alternative to AIMD studied by Floyd,
// Handley & Padhye, the paper's reference [13]). Instead of reacting to
// individual loss events, it maintains an exponentially weighted estimate
// p̂ of the loss rate and pins its window to the TCP throughput equation's
// simplified form for AIMD(1, 0.5):
//
//	x = √(3 / (2·p̂))   MSS per RTT
//
// which is the window at which TCP Reno would equilibrate under loss rate
// p̂ — by construction the protocol targets 1-TCP-friendliness. Until the
// first loss it probes multiplicatively (TFRC's slow-start analogue),
// and the EWMA makes its steady-state trajectory far smoother than any
// multiplicative-decrease protocol: its RFC-5166-style smoothness score
// is a small fraction of Reno's 0.5.
type TFRC struct {
	// Alpha is the EWMA weight for the loss estimate (0 < Alpha ≤ 1,
	// default 0.25): p̂ ← (1−Alpha)·p̂ + Alpha·L.
	Alpha float64
	// ProbeGain multiplies the window each step before the first loss
	// (> 1, default 2, i.e. doubling).
	ProbeGain float64

	pHat   float64
	primed bool // whether any loss has ever been observed
}

// NewTFRC returns a TFRC protocol with EWMA weight alpha. It panics for
// alpha outside (0, 1].
//
// The weight plays the role of TFRC's loss-interval averaging depth: real
// TFRC averages over ~8 loss events, and with loss epochs spanning on the
// order of 100 RTT-steps in this model, a per-step weight near 0.01 gives
// comparable smoothing. Large weights (0.25+) overreact to the single-step
// loss spikes of the fluid model's overflow events and produce a deep
// sawtooth rather than TFRC's smooth rate.
func NewTFRC(alpha float64) *TFRC {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("protocol: invalid TFRC alpha %v", alpha))
	}
	return &TFRC{Alpha: alpha, ProbeGain: 2}
}

// DefaultTFRC returns TFRC with the per-step EWMA weight 0.01 (see
// NewTFRC for the calibration).
func DefaultTFRC() *TFRC { return NewTFRC(0.01) }

// equationWindow returns √(3/(2p)), the simplified TCP response function.
func equationWindow(p float64) float64 {
	return math.Sqrt(1.5 / p)
}

// Next implements Protocol.
func (t *TFRC) Next(fb Feedback) float64 {
	if fb.Loss > 0 {
		t.primed = true
	}
	t.pHat = (1-t.Alpha)*t.pHat + t.Alpha*fb.Loss
	if !t.primed {
		return fb.Window * t.ProbeGain
	}
	// Guard the equation against a decayed-to-zero estimate: cap the
	// window at what a fresh minimal loss estimate would allow.
	const pFloor = 1e-9
	if t.pHat < pFloor {
		t.pHat = pFloor
	}
	return equationWindow(t.pHat)
}

// LossBased implements Protocol; TFRC ignores RTT in this model.
func (t *TFRC) LossBased() bool { return true }

// Name implements Protocol.
func (t *TFRC) Name() string { return fmt.Sprintf("TFRC(%g)", t.Alpha) }

// Clone implements Protocol.
func (t *TFRC) Clone() Protocol {
	return &TFRC{Alpha: t.Alpha, ProbeGain: t.ProbeGain}
}
