package protocol

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Parse builds a Protocol from a compact textual spec, used by the command
// line tools. Accepted forms (case-insensitive):
//
//	reno                     AIMD(1, 0.5)
//	scalable                 MIMD(1.01, 0.875)
//	scalable-aimd            AIMD(1, 0.875)
//	cubic                    CUBIC(0.4, 0.8)
//	pcc                      PCC with δ = 20
//	vegas                    Vegas(2, 4)
//	iiad                     BIN(1, 1, 1, 0)
//	sqrt                     BIN(1, 0.5, 0.5, 0.5)
//	aimd:a,b                 AIMD(a, b)
//	mimd:a,b                 MIMD(a, b)
//	bin:a,b,k,l              BIN(a, b, k, l)
//	cubic:c,b                CUBIC(c, b)
//	raimd:a,b,eps            Robust-AIMD(a, b, ε)
//	robustaimd:a,b,eps       Robust-AIMD(a, b, ε)
//	pcc:delta                PCC with loss penalty δ
//	vegas:alpha,beta         Vegas(α, β)
//	probe:a                  ProbeUntilLoss(a)
//	tfrc                     TFRC(0.01), equation-based
//	tfrc:alpha               TFRC with EWMA weight alpha
//	hstcp                    HighSpeed TCP (RFC 3649)
//	bbr                      BBRish, window-based BBR-style model control
func Parse(spec string) (Protocol, error) {
	name := strings.ToLower(strings.TrimSpace(spec))
	var argStr string
	if i := strings.IndexByte(name, ':'); i >= 0 {
		name, argStr = name[:i], name[i+1:]
	}

	args, err := parseArgs(argStr)
	if err != nil {
		return nil, fmt.Errorf("protocol: spec %q: %w", spec, err)
	}

	build := func(want int, f func() Protocol) (Protocol, error) {
		if len(args) != want {
			return nil, fmt.Errorf("protocol: spec %q: want %d parameters, got %d", spec, want, len(args))
		}
		var p Protocol
		err := catchPanic(func() { p = f() })
		if err != nil {
			return nil, fmt.Errorf("protocol: spec %q: %w", spec, err)
		}
		return p, nil
	}

	switch name {
	case "reno":
		return build(0, func() Protocol { return Reno() })
	case "scalable":
		return build(0, func() Protocol { return Scalable() })
	case "scalable-aimd":
		return build(0, func() Protocol { return ScalableAIMD() })
	case "iiad":
		return build(0, func() Protocol { return IIAD() })
	case "sqrt":
		return build(0, func() Protocol { return SQRT() })
	case "aimd":
		return build(2, func() Protocol { return NewAIMD(args[0], args[1]) })
	case "mimd":
		return build(2, func() Protocol { return NewMIMD(args[0], args[1]) })
	case "bin":
		return build(4, func() Protocol { return NewBinomial(args[0], args[1], args[2], args[3]) })
	case "cubic":
		if len(args) == 0 {
			return CubicLinux(), nil
		}
		return build(2, func() Protocol { return NewCubic(args[0], args[1]) })
	case "raimd", "robustaimd", "robust-aimd":
		return build(3, func() Protocol { return NewRobustAIMD(args[0], args[1], args[2]) })
	case "pcc":
		if len(args) == 0 {
			return DefaultPCC(), nil
		}
		return build(1, func() Protocol { return NewPCC(args[0]) })
	case "vegas":
		if len(args) == 0 {
			return DefaultVegas(), nil
		}
		return build(2, func() Protocol { return NewVegas(args[0], args[1]) })
	case "bbr", "bbrish":
		return build(0, func() Protocol { return NewBBRish() })
	case "hstcp":
		return build(0, func() Protocol { return NewHighSpeed() })
	case "tfrc":
		if len(args) == 0 {
			return DefaultTFRC(), nil
		}
		return build(1, func() Protocol { return NewTFRC(args[0]) })
	case "probe":
		return build(1, func() Protocol { return NewProbeUntilLoss(args[0]) })
	default:
		return nil, fmt.Errorf("protocol: unknown protocol %q", spec)
	}
}

// MustParse is Parse that panics on error, for tests and example code.
func MustParse(spec string) Protocol {
	p, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return p
}

func parseArgs(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad parameter %q", p)
		}
		// ParseFloat accepts "NaN" and "Inf", which would slip past the
		// constructors' range checks (every comparison with NaN is
		// false). Protocol parameters must be finite.
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("bad parameter %q: must be finite", p)
		}
		out[i] = v
	}
	return out, nil
}

func catchPanic(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	f()
	return nil
}
