package protocol

import (
	"fmt"
	"math"
)

// AIMD is the additive-increase multiplicative-decrease family AIMD(a,b):
// on a loss-free step the window grows by A segments; on a lossy step it is
// multiplied by B. TCP Reno in the paper's model is AIMD(1, 0.5) and TCP
// Scalable in some environments is AIMD(1, 0.875).
type AIMD struct {
	A float64 // additive increase per RTT, in MSS (a > 0)
	B float64 // multiplicative decrease factor (0 < b < 1)
}

// NewAIMD returns AIMD(a,b). It panics on parameters outside the paper's
// ranges (a > 0, 0 < b < 1).
func NewAIMD(a, b float64) *AIMD {
	if a <= 0 || b <= 0 || b >= 1 {
		panic(fmt.Sprintf("protocol: invalid AIMD(%v,%v)", a, b))
	}
	return &AIMD{A: a, B: b}
}

// Reno returns the paper's model of TCP Reno, AIMD(1, 0.5).
func Reno() *AIMD { return NewAIMD(1, 0.5) }

// ScalableAIMD returns AIMD(1, 0.875), the AIMD approximation of TCP
// Scalable the paper uses "in some environments".
func ScalableAIMD() *AIMD { return NewAIMD(1, 0.875) }

// Next implements Protocol.
func (p *AIMD) Next(fb Feedback) float64 {
	if fb.Loss > 0 {
		return fb.Window * p.B
	}
	return fb.Window + p.A
}

// LossBased implements Protocol; AIMD ignores RTT.
func (p *AIMD) LossBased() bool { return true }

// Name implements Protocol.
func (p *AIMD) Name() string { return fmt.Sprintf("AIMD(%g,%g)", p.A, p.B) }

// Clone implements Protocol.
func (p *AIMD) Clone() Protocol { c := *p; return &c }

// MIMD is the multiplicative-increase multiplicative-decrease family
// MIMD(a,b): on a loss-free step the window is multiplied by A (> 1); on a
// lossy step it is multiplied by B. TCP Scalable is MIMD(1.01, 0.875).
type MIMD struct {
	A float64 // multiplicative increase factor (a > 1)
	B float64 // multiplicative decrease factor (0 < b < 1)
}

// NewMIMD returns MIMD(a,b). It panics on parameters outside a > 1,
// 0 < b < 1.
func NewMIMD(a, b float64) *MIMD {
	if a <= 1 || b <= 0 || b >= 1 {
		panic(fmt.Sprintf("protocol: invalid MIMD(%v,%v)", a, b))
	}
	return &MIMD{A: a, B: b}
}

// Scalable returns the paper's model of TCP Scalable, MIMD(1.01, 0.875).
func Scalable() *MIMD { return NewMIMD(1.01, 0.875) }

// Next implements Protocol.
func (p *MIMD) Next(fb Feedback) float64 {
	if fb.Loss > 0 {
		return fb.Window * p.B
	}
	return fb.Window * p.A
}

// LossBased implements Protocol.
func (p *MIMD) LossBased() bool { return true }

// Name implements Protocol.
func (p *MIMD) Name() string { return fmt.Sprintf("MIMD(%g,%g)", p.A, p.B) }

// Clone implements Protocol.
func (p *MIMD) Clone() Protocol { c := *p; return &c }

// Binomial is the binomial congestion-control family BIN(a,b,k,l) of
// Bansal & Balakrishnan (INFOCOM 2001) as formalized in §2:
//
//	x(t+1) = x(t) + a/x(t)^k   if L(t) = 0
//	x(t+1) = x(t) − b·x(t)^l   if L(t) > 0
//
// k = 0, l = 1 recovers AIMD; k = −1, l = 1 would be MIMD (not expressible
// here since k ≥ 0); k = 1, l = 1 is IIAD... the paper requires a > 0,
// 0 < b ≤ 1, k ≥ 0, l ∈ [0, 1].
type Binomial struct {
	A float64 // increase numerator (a > 0)
	B float64 // decrease coefficient (0 < b ≤ 1)
	K float64 // increase exponent (k ≥ 0)
	L float64 // decrease exponent (l ∈ [0, 1])
}

// NewBinomial returns BIN(a,b,k,l). It panics on parameters outside the
// paper's ranges.
func NewBinomial(a, b, k, l float64) *Binomial {
	if a <= 0 || b <= 0 || b > 1 || k < 0 || l < 0 || l > 1 {
		panic(fmt.Sprintf("protocol: invalid BIN(%v,%v,%v,%v)", a, b, k, l))
	}
	return &Binomial{A: a, B: b, K: k, L: l}
}

// IIAD returns BIN(1, 1, 1, 0): inverse-increase additive-decrease, a
// classic member of the binomial family.
func IIAD() *Binomial { return NewBinomial(1, 1, 1, 0) }

// SQRT returns BIN(1, 0.5, 0.5, 0.5), the "SQRT" binomial protocol.
func SQRT() *Binomial { return NewBinomial(1, 0.5, 0.5, 0.5) }

// Next implements Protocol.
func (p *Binomial) Next(fb Feedback) float64 {
	w := fb.Window
	if w < MinWindow {
		w = MinWindow
	}
	if fb.Loss > 0 {
		return w - p.B*math.Pow(w, p.L)
	}
	return w + p.A/math.Pow(w, p.K)
}

// LossBased implements Protocol.
func (p *Binomial) LossBased() bool { return true }

// Name implements Protocol.
func (p *Binomial) Name() string {
	return fmt.Sprintf("BIN(%g,%g,%g,%g)", p.A, p.B, p.K, p.L)
}

// Clone implements Protocol.
func (p *Binomial) Clone() Protocol { c := *p; return &c }

// Cubic models TCP Cubic's window curve CUBIC(c,b) per §2:
//
//	x(t+1) = xmax + c·(T − (xmax(1−b)/c)^(1/3))³   if L(t) = 0
//	x(t+1) = xmax·b                                 if L(t) > 0
//
// where xmax is the window at the last loss and T the number of steps since
// then. The inflection point of the curve sits at the previous maximum, so
// the window plateaus near xmax and then accelerates — Cubic's signature
// shape. The Linux default corresponds to CUBIC(0.4, 0.8) in the paper's
// evaluation.
type Cubic struct {
	C float64 // scaling factor (c > 0)
	B float64 // rate-decrease factor (0 < b < 1)

	xmax   float64 // window at last loss
	steps  float64 // T: steps since last loss
	primed bool    // whether xmax has been initialized
}

// NewCubic returns CUBIC(c,b). It panics on parameters outside c > 0,
// 0 < b < 1.
func NewCubic(c, b float64) *Cubic {
	if c <= 0 || b <= 0 || b >= 1 {
		panic(fmt.Sprintf("protocol: invalid CUBIC(%v,%v)", c, b))
	}
	return &Cubic{C: c, B: b}
}

// CubicLinux returns CUBIC(0.4, 0.8), the configuration the paper
// evaluates as Linux's TCP Cubic.
func CubicLinux() *Cubic { return NewCubic(0.4, 0.8) }

// inflection returns K = (xmax(1−b)/c)^(1/3), the step offset at which the
// cubic curve re-crosses xmax.
func (p *Cubic) inflection() float64 {
	return math.Cbrt(p.xmax * (1 - p.B) / p.C)
}

// Next implements Protocol.
func (p *Cubic) Next(fb Feedback) float64 {
	if !p.primed {
		// Before the first loss there is no "last-loss window". Seed
		// the curve so that the current window lies on it exactly at
		// the inflection point: xmax = current window, T = K. The
		// window then accelerates away from its starting point, which
		// mirrors Cubic's convex probing phase.
		p.xmax = math.Max(fb.Window, MinWindow)
		p.steps = p.inflection()
		p.primed = true
	}
	if fb.Loss > 0 {
		p.xmax = math.Max(fb.Window, MinWindow)
		p.steps = 0
		return p.xmax * p.B
	}
	p.steps++
	d := p.steps - p.inflection()
	return p.xmax + p.C*d*d*d
}

// LossBased implements Protocol.
func (p *Cubic) LossBased() bool { return true }

// Name implements Protocol.
func (p *Cubic) Name() string { return fmt.Sprintf("CUBIC(%g,%g)", p.C, p.B) }

// Clone implements Protocol.
func (p *Cubic) Clone() Protocol { return NewCubic(p.C, p.B) }

// RobustAIMD is the paper's §5.2 Robust-AIMD(a,b,ε): an AIMD rule driven by
// the measured loss *rate* of each monitor interval rather than by any
// single loss event. The window is additively increased by A while the
// loss rate stays below ε and multiplicatively decreased by B otherwise:
//
//	x(t+1) = x(t) + a   if L(t) < ε
//	x(t+1) = x(t)·b     if L(t) ≥ ε
//
// Tolerating loss below ε makes the protocol ε-robust to non-congestion
// loss (Metric VI) at a quantified cost in TCP-friendliness (Theorem 3).
type RobustAIMD struct {
	A   float64 // additive increase per RTT (a > 0)
	B   float64 // multiplicative decrease factor (0 < b < 1)
	Eps float64 // loss-rate tolerance ε ∈ (0, 1)
}

// NewRobustAIMD returns Robust-AIMD(a,b,ε). It panics on invalid
// parameters.
func NewRobustAIMD(a, b, eps float64) *RobustAIMD {
	if a <= 0 || b <= 0 || b >= 1 || eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("protocol: invalid RobustAIMD(%v,%v,%v)", a, b, eps))
	}
	return &RobustAIMD{A: a, B: b, Eps: eps}
}

// Next implements Protocol.
func (p *RobustAIMD) Next(fb Feedback) float64 {
	if fb.Loss >= p.Eps {
		return fb.Window * p.B
	}
	return fb.Window + p.A
}

// LossBased implements Protocol.
func (p *RobustAIMD) LossBased() bool { return true }

// Name implements Protocol.
func (p *RobustAIMD) Name() string {
	return fmt.Sprintf("RobustAIMD(%g,%g,%g)", p.A, p.B, p.Eps)
}

// Clone implements Protocol.
func (p *RobustAIMD) Clone() Protocol { c := *p; return &c }
