package protocol_test

import (
	"testing"

	"repro/internal/fluid"
	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/stats"
)

func bbrLink() fluid.Config {
	theta := 0.021
	return fluid.Config{
		Bandwidth: 100 / (2 * theta),
		PropDelay: theta,
		Buffer:    40,
	}
}

func TestBBRishNotLossBased(t *testing.T) {
	if protocol.NewBBRish().LossBased() {
		t.Fatal("BBRish must not be loss-based")
	}
}

func TestBBRishConvergesNearBDP(t *testing.T) {
	tr, err := fluid.Homogeneous(bbrLink(), protocol.NewBBRish(), 1, []float64{1}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	avg := tr.AvgWindow(0, 0.75)
	// The estimated BDP is C = 100 MSS; steady state hovers near it.
	if avg < 80 || avg > 135 {
		t.Fatalf("BBRish steady window = %v, want ≈ C = 100", avg)
	}
}

func TestBBRishKeepsLatencyLow(t *testing.T) {
	lat, err := metrics.LatencyAvoidance(bbrLink(), protocol.NewBBRish(), 1, metrics.Options{Steps: 2000})
	if err != nil {
		t.Fatal(err)
	}
	reno, err := metrics.LatencyAvoidance(bbrLink(), protocol.Reno(), 1, metrics.Options{Steps: 2000})
	if err != nil {
		t.Fatal(err)
	}
	// BBRish probes past the BDP briefly (gain 1.25) but drains; its
	// inflation stays well below the buffer-filling loss-based baseline.
	if lat >= reno {
		t.Fatalf("BBRish latency %v not below Reno's %v", lat, reno)
	}
	if lat > 0.5 {
		t.Fatalf("BBRish latency inflation = %v, want small", lat)
	}
}

func TestBBRishRobustToRandomLoss(t *testing.T) {
	// Metric VI: BBRish's delivery-rate model shrugs off 5% random loss
	// (rate drops 5%, the BDP estimate barely moves).
	ok, err := metrics.RobustTo(protocol.NewBBRish(), 0.05, metrics.Options{Steps: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("BBRish not robust to 5% loss")
	}
	// Contrast: Reno dies at 0.5%.
	ok, err = metrics.RobustTo(protocol.Reno(), 0.005, metrics.Options{Steps: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("Reno robust to 0.5%?")
	}
}

func TestBBRishCoexistsWithRenoUnlikeVegas(t *testing.T) {
	// A key BBR design goal the model reproduces: against a buffer-
	// filling loss-based competitor, the max-rate filter keeps
	// re-inflating BBRish during Reno's drain phases, so it holds a
	// meaningful share — whereas the latency-threshold avoider (Vegas)
	// is starved outright (Theorem 5's regime).
	share := func(q protocol.Protocol) float64 {
		tr, err := fluid.Mixed(bbrLink(), []protocol.Protocol{protocol.Reno(), q}, []float64{1, 1}, 3000)
		if err != nil {
			t.Fatal(err)
		}
		return tr.AvgWindow(1, 0.75) / tr.AvgWindow(0, 0.75)
	}
	bbr := share(protocol.NewBBRish())
	vegas := share(protocol.DefaultVegas())
	if bbr < 0.15 {
		t.Fatalf("BBRish share vs Reno = %v, want meaningful coexistence", bbr)
	}
	if vegas >= bbr/2 {
		t.Fatalf("Vegas share %v not ≪ BBRish share %v", vegas, bbr)
	}
}

func TestBBRishRatioPreservation(t *testing.T) {
	// In the paper's model BBRish is ratio-preserving, hence ≈0-fair from
	// skewed starts: each flow's next window is proportional to its OWN
	// delivery-rate estimate (w ← gain·w·(1−L)·minRTT/RTT), a
	// multiplicative self-scaling with the same structure as MIMD.
	// (BBRv1's real-world inter-flow fairness problems are the pacing-
	// level sibling of this property.) The link is still shared without
	// collapse: the aggregate tracks the BDP.
	tr, err := fluid.Homogeneous(bbrLink(), protocol.NewBBRish(), 2, []float64{1, 60}, 3000)
	if err != nil {
		t.Fatal(err)
	}
	a, b := tr.AvgWindow(0, 0.75), tr.AvgWindow(1, 0.75)
	if r := stats.MinOverMax([]float64{a, b}); r > 0.2 {
		t.Fatalf("expected skew preservation, got fairness %v (windows %v, %v)", r, a, b)
	}
	total := stats.Mean(stats.Tail(tr.Total(), 0.75))
	if total < 80 || total > 140 {
		t.Fatalf("aggregate %v strayed from BDP ≈ 100", total)
	}
}

func TestBBRishSpec(t *testing.T) {
	p := protocol.MustParse("bbr")
	if p.Name() != "BBRish(1)" {
		t.Fatalf("name = %q", p.Name())
	}
	c := p.Clone()
	if c.Name() != p.Name() {
		t.Fatal("clone name mismatch")
	}
}
