package protocol

import (
	"math"
	"testing"
)

func TestHSTCPStandardRegimeBelowLowWindow(t *testing.T) {
	p := NewHighSpeed()
	reno := Reno()
	for _, w := range []float64{1, 10, 30, 38} {
		if g, want := p.Next(fbNoLoss(w)), reno.Next(fbNoLoss(w)); g != want {
			t.Fatalf("w=%v increase: HSTCP %v != Reno %v", w, g, want)
		}
		if g, want := p.Next(fbLoss(w, 0.1)), reno.Next(fbLoss(w, 0.1)); g != want {
			t.Fatalf("w=%v decrease: HSTCP %v != Reno %v", w, g, want)
		}
	}
}

func TestHSTCPAggressiveAtLargeWindows(t *testing.T) {
	p := NewHighSpeed()
	// At w = 10000, a(w) ≫ 1 and b(w) ≪ 0.5.
	inc := p.Next(fbNoLoss(10000)) - 10000
	if inc < 15 {
		t.Fatalf("HSTCP increase at w=10000 = %v, want ≫ 1", inc)
	}
	dec := p.Next(fbLoss(10000, 0.1))
	if dec < 10000*0.7 {
		t.Fatalf("HSTCP decrease at w=10000 = %v, want gentle (≥ 0.7w)", dec)
	}
}

func TestHSTCPResponseMonotone(t *testing.T) {
	// a(w) non-decreasing, b(w) non-increasing over the table's range.
	prevA, prevB := 0.0, 1.0
	for w := 38.0; w <= 90000; w *= 1.3 {
		a, b := hsParams(w)
		if a < prevA-1e-9 {
			t.Fatalf("a(w) decreased at w=%v: %v < %v", w, a, prevA)
		}
		if b > prevB+1e-9 {
			t.Fatalf("b(w) increased at w=%v: %v > %v", w, b, prevB)
		}
		prevA, prevB = a, b
	}
}

func TestHSTCPTableAnchors(t *testing.T) {
	// Interpolation must hit the anchor rows exactly.
	for _, e := range hsTable {
		a, b := hsParams(e.W)
		if math.Abs(a-e.A) > 1e-9 || math.Abs(b-e.B) > 1e-9 {
			t.Fatalf("anchor w=%v: got (%v,%v), want (%v,%v)", e.W, a, b, e.A, e.B)
		}
	}
}

func TestHSTCPEndpointClamping(t *testing.T) {
	aLo, bLo := hsParams(1)
	if aLo != 1 || bLo != 0.5 {
		t.Fatalf("below-table params = (%v,%v)", aLo, bLo)
	}
	aHi, bHi := hsParams(1e9)
	last := hsTable[len(hsTable)-1]
	if aHi != last.A || bHi != last.B {
		t.Fatalf("above-table params = (%v,%v)", aHi, bHi)
	}
}

func TestHSTCPCloneAndSpec(t *testing.T) {
	p := NewHighSpeed()
	c := p.Clone()
	if c.Name() != p.Name() || c == Protocol(p) {
		t.Fatalf("clone broken: %v", c.Name())
	}
	q := MustParse("hstcp")
	if q.Name() != "HSTCP(low=38)" {
		t.Fatalf("spec name = %q", q.Name())
	}
	if !q.LossBased() {
		t.Fatal("HSTCP must be loss-based")
	}
}
