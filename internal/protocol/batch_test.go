package protocol

import (
	"math"
	"testing"
)

// kernelCases are the batchable protocol instances the bit-identity matrix
// covers, spanning default and off-default parameters for each family.
func kernelCases() []Protocol {
	return []Protocol{
		Reno(),
		NewAIMD(1, 0.875),
		NewAIMD(0.5, 0.3),
		Scalable(),
		NewMIMD(1.05, 0.6),
		IIAD(),
		SQRT(),
		NewBinomial(1.5, 0.25, 0.75, 0.25),
		NewRobustAIMD(1, 0.5, 0.05),
		NewRobustAIMD(0.7, 0.8, 0.01),
		NewHighSpeed(),
		&HighSpeed{LowWindow: 100},
		CubicLinux(),
		NewCubic(1.2, 0.5),
	}
}

// TestKernelBitIdentity asserts that Kernel.Step returns the exact float64
// that Next would, across a grid of windows and loss rates that exercises
// every branch: zero loss, sub- and super-threshold loss, windows at and
// below MinWindow, and HighSpeed windows on both sides of LowWindow and
// beyond the response-table endpoints.
func TestKernelBitIdentity(t *testing.T) {
	windows := []float64{0, 0.5, 1, 1.5, 2, 10, 37.5, 38, 38.5, 100, 1000, 90000, 1e9}
	losses := []float64{0, 1e-9, 0.005, 0.01, 0.049999, 0.05, 0.2, 0.999}

	for _, p := range kernelCases() {
		bs, ok := p.(BatchStepper)
		if !ok {
			t.Fatalf("%s does not implement BatchStepper", p.Name())
		}
		k, ok := bs.Kernel()
		if !ok {
			t.Fatalf("%s: Kernel() returned ok=false", p.Name())
		}
		if !k.Valid() {
			t.Fatalf("%s: kernel op %d invalid", p.Name(), k.Op)
		}
		// Stateful kernels (Cubic) mutate k and p in tandem, so the grid
		// doubles as a state-trajectory identity check: every (w, loss)
		// visits both sides in the same order.
		for _, w := range windows {
			for _, loss := range losses {
				want := p.Next(Feedback{Window: w, Loss: loss})
				got := k.Step(w, loss)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Errorf("%s: Step(%g, %g) = %v, Next = %v", p.Name(), w, loss, got, want)
				}
			}
		}
	}
}

// TestPrimedCubicDeclinesKernel pins that a Cubic instance with live state
// refuses to hand out a kernel: the zeroed state slots would silently
// restart the window curve.
func TestPrimedCubicDeclinesKernel(t *testing.T) {
	p := CubicLinux()
	if _, ok := p.Kernel(); !ok {
		t.Fatal("fresh Cubic must claim a kernel")
	}
	p.Next(Feedback{Window: 50, Loss: 0})
	if _, ok := p.Kernel(); ok {
		t.Fatal("primed Cubic must decline a kernel")
	}
	if clone, ok := p.Clone().(*Cubic); !ok {
		t.Fatal("Cubic.Clone did not return *Cubic")
	} else if _, ok := clone.Kernel(); !ok {
		t.Fatal("cloned (reset) Cubic must claim a kernel")
	}
}

// TestKernelIgnoresRTTAndStep pins the contract that kernelized families
// are loss-based: Next must not depend on Feedback.Step or Feedback.RTT,
// or the kernel (which never sees them) could diverge.
func TestKernelIgnoresRTTAndStep(t *testing.T) {
	for _, p := range kernelCases() {
		if !p.LossBased() {
			t.Fatalf("%s has a kernel but is not loss-based", p.Name())
		}
		a := p.Next(Feedback{Step: 0, Window: 50, RTT: 0.01, Loss: 0.02})
		b := p.Next(Feedback{Step: 999, Window: 50, RTT: 3.5, Loss: 0.02})
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Errorf("%s: Next depends on Step/RTT (%v vs %v)", p.Name(), a, b)
		}
	}
}

// TestNonBatchableFamilies asserts the stateful and RTT-sensitive families
// do not claim kernels.
func TestNonBatchableFamilies(t *testing.T) {
	for _, p := range []Protocol{
		DefaultPCC(),
		DefaultVegas(),
		NewBBRish(),
		DefaultTFRC(),
		NewProbeUntilLoss(1),
		&Func{Fn: func(fb Feedback) float64 { return fb.Window + 1 }},
	} {
		if bs, ok := p.(BatchStepper); ok {
			if _, claims := bs.Kernel(); claims {
				t.Errorf("%s claims a kernel but must not", p.Name())
			}
		}
	}
}

// TestKernelZeroOp pins the defensive behavior of an unset kernel.
func TestKernelZeroOp(t *testing.T) {
	var k Kernel
	if k.Valid() {
		t.Fatal("zero kernel reports valid")
	}
	if got := k.Step(42, 0.5); got != 42 {
		t.Fatalf("zero kernel Step = %v, want identity", got)
	}
}
