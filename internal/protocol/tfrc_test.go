package protocol

import (
	"math"
	"testing"
)

func TestTFRCProbesUntilFirstLoss(t *testing.T) {
	p := DefaultTFRC()
	w := 1.0
	for i := 0; i < 5; i++ {
		nw := p.Next(fbNoLoss(w))
		if nw != 2*w {
			t.Fatalf("step %d: %v -> %v, want doubling", i, w, nw)
		}
		w = nw
	}
}

func TestTFRCEquationAfterLoss(t *testing.T) {
	p := NewTFRC(1) // alpha = 1: p̂ equals the latest observation
	got := p.Next(fbLoss(100, 0.01))
	want := math.Sqrt(1.5 / 0.01)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("window = %v, want √(3/2p) = %v", got, want)
	}
	// Higher loss ⇒ smaller window.
	lower := p.Next(fbLoss(100, 0.04))
	if lower >= got {
		t.Fatalf("window %v did not shrink under higher loss (was %v)", lower, got)
	}
}

func TestTFRCEWMASmoothing(t *testing.T) {
	p := NewTFRC(0.25)
	// One loss primes it; subsequent loss-free steps decay p̂ slowly, so
	// the window grows gradually (no halving, no doubling).
	w := p.Next(fbLoss(50, 0.02))
	for i := 0; i < 10; i++ {
		nw := p.Next(fbNoLoss(w))
		if nw <= w {
			t.Fatalf("step %d: window %v did not grow during loss-free decay", i, nw)
		}
		if nw > 1.3*w {
			t.Fatalf("step %d: window jumped %v -> %v; EWMA should be smooth", i, w, nw)
		}
		w = nw
	}
}

func TestTFRCGuardsZeroEstimate(t *testing.T) {
	p := NewTFRC(1)
	p.Next(fbLoss(10, 0.5)) // primed
	// alpha=1 with zero loss would zero p̂; the floor must keep the
	// window finite.
	got := p.Next(fbNoLoss(10))
	if math.IsInf(got, 1) || math.IsNaN(got) {
		t.Fatalf("window = %v after estimate decay", got)
	}
}

func TestTFRCConstructorPanics(t *testing.T) {
	for _, a := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTFRC(%v) did not panic", a)
				}
			}()
			NewTFRC(a)
		}()
	}
}

func TestTFRCCloneResets(t *testing.T) {
	p := DefaultTFRC()
	p.Next(fbLoss(100, 0.1))
	c := p.Clone().(*TFRC)
	if c.primed || c.pHat != 0 {
		t.Fatal("clone inherited loss state")
	}
	if c.Name() != p.Name() {
		t.Fatalf("clone name %q != %q", c.Name(), p.Name())
	}
}

func TestTFRCParseSpec(t *testing.T) {
	p := MustParse("tfrc")
	if p.Name() != "TFRC(0.01)" {
		t.Fatalf("name = %q", p.Name())
	}
	p = MustParse("tfrc:0.5")
	if p.Name() != "TFRC(0.5)" {
		t.Fatalf("name = %q", p.Name())
	}
	if _, err := Parse("tfrc:2"); err == nil {
		t.Fatal("invalid alpha accepted")
	}
}
