package protocol

import (
	"strings"
	"testing"
)

func TestParseShorthands(t *testing.T) {
	cases := []struct {
		spec string
		want string
	}{
		{"reno", "AIMD(1,0.5)"},
		{"scalable", "MIMD(1.01,0.875)"},
		{"scalable-aimd", "AIMD(1,0.875)"},
		{"cubic", "CUBIC(0.4,0.8)"},
		{"iiad", "BIN(1,1,1,0)"},
		{"sqrt", "BIN(1,0.5,0.5,0.5)"},
		{"pcc", "PCC(δ=20)"},
		{"vegas", "Vegas(2,4)"},
	}
	for _, c := range cases {
		p, err := Parse(c.spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.spec, err)
			continue
		}
		if p.Name() != c.want {
			t.Errorf("Parse(%q).Name() = %q, want %q", c.spec, p.Name(), c.want)
		}
	}
}

func TestParseParameterized(t *testing.T) {
	cases := []struct {
		spec string
		want string
	}{
		{"aimd:2,0.7", "AIMD(2,0.7)"},
		{"AIMD: 2 , 0.7", "AIMD(2,0.7)"},
		{"mimd:1.05,0.9", "MIMD(1.05,0.9)"},
		{"bin:1,0.5,1,1", "BIN(1,0.5,1,1)"},
		{"cubic:0.2,0.7", "CUBIC(0.2,0.7)"},
		{"raimd:1,0.8,0.01", "RobustAIMD(1,0.8,0.01)"},
		{"robustaimd:1,0.8,0.005", "RobustAIMD(1,0.8,0.005)"},
		{"robust-aimd:1,0.8,0.007", "RobustAIMD(1,0.8,0.007)"},
		{"pcc:10", "PCC(δ=10)"},
		{"vegas:1,3", "Vegas(1,3)"},
		{"probe:0.5", "ProbeUntilLoss(0.5)"},
	}
	for _, c := range cases {
		p, err := Parse(c.spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.spec, err)
			continue
		}
		if p.Name() != c.want {
			t.Errorf("Parse(%q).Name() = %q, want %q", c.spec, p.Name(), c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		spec    string
		errPart string
	}{
		{"nosuch", "unknown protocol"},
		{"aimd:1", "want 2 parameters"},
		{"aimd:1,0.5,3", "want 2 parameters"},
		{"aimd:x,0.5", "bad parameter"},
		{"aimd:0,0.5", "invalid AIMD"},
		{"mimd:1,0.5", "invalid MIMD"},
		{"raimd:1,0.8,2", "invalid RobustAIMD"},
		{"reno:1", "want 0 parameters"},
		{"probe:0", "invalid ProbeUntilLoss"},
	}
	for _, c := range cases {
		_, err := Parse(c.spec)
		if err == nil {
			t.Errorf("Parse(%q): expected error", c.spec)
			continue
		}
		if !strings.Contains(err.Error(), c.errPart) {
			t.Errorf("Parse(%q) error = %q, want substring %q", c.spec, err, c.errPart)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse of bad spec did not panic")
		}
	}()
	MustParse("nosuch")
}

func TestParseRoundTripThroughClone(t *testing.T) {
	specs := []string{"reno", "scalable", "cubic", "raimd:1,0.8,0.01", "pcc", "vegas", "sqrt"}
	for _, s := range specs {
		p := MustParse(s)
		c := p.Clone()
		if c.Name() != p.Name() {
			t.Errorf("%s: clone name %q != %q", s, c.Name(), p.Name())
		}
		if c == p {
			t.Errorf("%s: Clone returned the same instance", s)
		}
	}
}
