package obs

import (
	"encoding/json"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a last-write-wins float64 metric.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value (zero before the first Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histBuckets are the duration histogram's upper bounds: exponential
// from 1 µs doubling to ~1.2 h, which covers everything from a
// packet-sim tick to a full -exp all reproduction, plus a +Inf overflow.
const histBuckets = 33

func bucketBound(i int) time.Duration { return time.Microsecond << uint(i) }

// Histogram accumulates durations into fixed exponential buckets and
// tracks count/sum/min/max exactly. Observations take a mutex; callers
// are expected to observe per cell or per run, not per simulation step.
type Histogram struct {
	mu       sync.Mutex
	buckets  [histBuckets + 1]uint64 // last bucket is +Inf overflow
	count    uint64
	sum      time.Duration
	min, max time.Duration
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := sort.Search(histBuckets, func(i int) bool { return d <= bucketBound(i) })
	h.mu.Lock()
	h.buckets[i]++
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// quantile estimates the q-quantile (0..1) from the bucket counts,
// attributing each bucket's mass to its upper bound. Must hold h.mu.
func (h *Histogram) quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i := range h.buckets {
		seen += h.buckets[i]
		if seen >= rank {
			if i >= histBuckets {
				return h.max
			}
			b := bucketBound(i)
			if b > h.max {
				return h.max
			}
			return b
		}
	}
	return h.max
}

// Bucket is one non-empty histogram bucket in a snapshot.
type Bucket struct {
	LESeconds float64 `json:"le_seconds"` // +Inf rendered as the observed max
	Count     uint64  `json:"count"`
	Inf       bool    `json:"inf,omitempty"` // true for the +Inf overflow bucket
}

// HistogramSnapshot is a histogram's JSON-exportable state. Quantiles
// are bucket-resolution estimates (upper bounds); Min/Max/Sum are exact.
type HistogramSnapshot struct {
	Count       uint64   `json:"count"`
	SumSeconds  float64  `json:"sum_seconds"`
	MinSeconds  float64  `json:"min_seconds"`
	MaxSeconds  float64  `json:"max_seconds"`
	MeanSeconds float64  `json:"mean_seconds"`
	P50Seconds  float64  `json:"p50_seconds"`
	P90Seconds  float64  `json:"p90_seconds"`
	P99Seconds  float64  `json:"p99_seconds"`
	Buckets     []Bucket `json:"buckets,omitempty"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Count:      h.count,
		SumSeconds: h.sum.Seconds(),
		MinSeconds: h.min.Seconds(),
		MaxSeconds: h.max.Seconds(),
		P50Seconds: h.quantile(0.50).Seconds(),
		P90Seconds: h.quantile(0.90).Seconds(),
		P99Seconds: h.quantile(0.99).Seconds(),
	}
	if h.count > 0 {
		s.MeanSeconds = h.sum.Seconds() / float64(h.count)
	}
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		le := h.max.Seconds()
		if i < histBuckets {
			le = bucketBound(i).Seconds()
		}
		s.Buckets = append(s.Buckets, Bucket{LESeconds: le, Count: c, Inf: i >= histBuckets})
	}
	return s
}

// registry is the process-wide named-metric store. Metrics are created
// on first access and live for the life of the process; Reset zeroes
// values but keeps identities, so cached pointers in instrumented
// packages stay valid.
var registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// GetCounter returns the named counter, creating it if needed.
// Instrumented packages cache the pointer in a package variable.
func GetCounter(name string) *Counter {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.counters == nil {
		registry.counters = map[string]*Counter{}
	}
	c := registry.counters[name]
	if c == nil {
		c = &Counter{}
		registry.counters[name] = c
	}
	return c
}

// GetGauge returns the named gauge, creating it if needed.
func GetGauge(name string) *Gauge {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.gauges == nil {
		registry.gauges = map[string]*Gauge{}
	}
	g := registry.gauges[name]
	if g == nil {
		g = &Gauge{}
		registry.gauges[name] = g
	}
	return g
}

// GetHistogram returns the named duration histogram, creating it if
// needed.
func GetHistogram(name string) *Histogram {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.histograms == nil {
		registry.histograms = map[string]*Histogram{}
	}
	h := registry.histograms[name]
	if h == nil {
		h = &Histogram{}
		registry.histograms[name] = h
	}
	return h
}

// Snapshot is the JSON-exportable state of every registered metric.
// Metrics that never recorded anything are omitted.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// TakeSnapshot captures the current value of every metric.
func TakeSnapshot() Snapshot {
	registry.mu.RLock()
	counters := make(map[string]*Counter, len(registry.counters))
	for k, v := range registry.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(registry.gauges))
	for k, v := range registry.gauges {
		gauges[k] = v
	}
	histograms := make(map[string]*Histogram, len(registry.histograms))
	for k, v := range registry.histograms {
		histograms[k] = v
	}
	registry.mu.RUnlock()

	var s Snapshot
	for k, c := range counters {
		if v := c.Value(); v != 0 {
			if s.Counters == nil {
				s.Counters = map[string]uint64{}
			}
			s.Counters[k] = v
		}
	}
	for k, g := range gauges {
		if v := g.Value(); v != 0 {
			if s.Gauges == nil {
				s.Gauges = map[string]float64{}
			}
			s.Gauges[k] = v
		}
	}
	for k, h := range histograms {
		if hs := h.snapshot(); hs.Count != 0 {
			if s.Histograms == nil {
				s.Histograms = map[string]HistogramSnapshot{}
			}
			s.Histograms[k] = hs
		}
	}
	return s
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// Reset zeroes every registered metric (identities are preserved).
func Reset() {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	for _, c := range registry.counters {
		c.v.Store(0)
	}
	for _, g := range registry.gauges {
		g.bits.Store(0)
	}
	for _, h := range registry.histograms {
		h.mu.Lock()
		h.buckets = [histBuckets + 1]uint64{}
		h.count, h.sum, h.min, h.max = 0, 0, 0, 0
		h.mu.Unlock()
	}
}
