package obs

import (
	"strings"
	"testing"
)

func TestProgressLine(t *testing.T) {
	var sb strings.Builder
	p := NewProgress(&sb, "sweep")
	p.Update(1, 4)
	p.Update(2, 4) // throttled: within the repaint interval and not final
	p.Update(4, 4) // final cell always repaints
	p.Finish()
	out := sb.String()
	if !strings.Contains(out, "\rsweep 1/4 cells (25.0%)") {
		t.Fatalf("first repaint missing: %q", out)
	}
	if strings.Contains(out, "2/4") {
		t.Fatalf("throttled update was painted: %q", out)
	}
	if !strings.Contains(out, "4/4 cells (100.0%)") {
		t.Fatalf("final repaint missing: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("Finish did not terminate the line: %q", out)
	}
}

func TestProgressFinishWithoutDraw(t *testing.T) {
	var sb strings.Builder
	NewProgress(&sb, "idle").Finish()
	if sb.Len() != 0 {
		t.Fatalf("Finish wrote %q with nothing drawn", sb.String())
	}
}

func TestSweepProgressSink(t *testing.T) {
	if SweepProgressFunc() != nil {
		t.Fatal("sink non-nil before SetSweepProgress")
	}
	var got int
	SetSweepProgress(func(done, total int) { got = done*100 + total })
	defer SetSweepProgress(nil)
	f := SweepProgressFunc()
	if f == nil {
		t.Fatal("sink nil after SetSweepProgress")
	}
	f(3, 8)
	if got != 308 {
		t.Fatalf("sink saw %d", got)
	}
	SetSweepProgress(nil)
	if SweepProgressFunc() != nil {
		t.Fatal("sink survived clear")
	}
}
