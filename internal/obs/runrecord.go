package obs

import (
	"context"
	"encoding/json"
	"log/slog"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Phase is one timed span of a run — an experiment grid, a report
// section, a render pass. Phases nest freely; the record keeps them in
// completion order.
type Phase struct {
	Name            string  `json:"name"`
	DurationSeconds float64 `json:"duration_seconds"`
}

// RunRecord is the structured manifest of one tool invocation: enough
// to replay the run (tool, version, every flag value, base seed) and to
// audit it (per-phase durations, headline scores, the full metrics
// snapshot). The flag helper writes it as runrecord.json; any Table or
// Figure reproduction is replayable from its record.
type RunRecord struct {
	Tool            string             `json:"tool"`
	Version         string             `json:"version"`
	GoVersion       string             `json:"go_version"`
	OS              string             `json:"os"`
	Arch            string             `json:"arch"`
	MaxProcs        int                `json:"max_procs"`
	Start           time.Time          `json:"start"`
	DurationSeconds float64            `json:"duration_seconds"`
	Params          map[string]string  `json:"params,omitempty"`
	BaseSeed        uint64             `json:"base_seed"`
	Cells           int                `json:"cells"`
	Phases          []Phase            `json:"phases,omitempty"`
	Scores          map[string]float64 `json:"scores,omitempty"`
	Metrics         *Snapshot          `json:"metrics,omitempty"`

	// Stats holds auxiliary stat groups (run-store hits/misses/bytes,
	// run-cache dedup counts) collected from registered sources at
	// Finish, so cold-vs-warm cache behavior is auditable from the
	// manifest alone.
	Stats map[string]map[string]float64 `json:"stats,omitempty"`

	// Flight carries the flight-recorder ring and the spans still open
	// at the last AttachFlightToRecord (cell retry, deadline, panic) —
	// the post-mortem evidence of what every worker was doing.
	Flight          []FlightEvent `json:"flight,omitempty"`
	FlightOpenSpans []ActiveSpan  `json:"flight_open_spans,omitempty"`

	mu       sync.Mutex
	finished bool
}

// auxStats are named callbacks producing stat groups for run records and
// the /snapshot endpoint. Registered by subsystems that sit below obs in
// the import graph (the run store, the metrics session cache).
var auxStats struct {
	mu      sync.Mutex
	sources map[string]func() map[string]float64
}

// RegisterStatsSource installs f as the producer of the named stat group
// (nil removes it). The source is polled at RunRecord.Finish and on every
// /snapshot request; it must be safe to call at any time.
func RegisterStatsSource(name string, f func() map[string]float64) {
	auxStats.mu.Lock()
	defer auxStats.mu.Unlock()
	if f == nil {
		delete(auxStats.sources, name)
		return
	}
	if auxStats.sources == nil {
		auxStats.sources = map[string]func() map[string]float64{}
	}
	auxStats.sources[name] = f
}

// collectAuxStats polls every registered stats source, dropping empty
// groups.
func collectAuxStats() map[string]map[string]float64 {
	auxStats.mu.Lock()
	sources := make(map[string]func() map[string]float64, len(auxStats.sources))
	for k, f := range auxStats.sources {
		sources[k] = f
	}
	auxStats.mu.Unlock()
	var out map[string]map[string]float64
	for name, f := range sources {
		if m := f(); len(m) > 0 {
			if out == nil {
				out = map[string]map[string]float64{}
			}
			out[name] = m
		}
	}
	return out
}

// active is the record library code reports into (phases, scores, cell
// counts). At most one run record is active per process.
var active atomic.Pointer[RunRecord]

// BeginRecord creates a run record for tool, stamps version/host info,
// and installs it as the active record. It replaces any prior active
// record.
func BeginRecord(tool string) *RunRecord {
	r := &RunRecord{
		Tool:      tool,
		Version:   buildVersion(),
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		MaxProcs:  runtime.GOMAXPROCS(0),
		Start:     time.Now(),
	}
	active.Store(r)
	return r
}

// ActiveRecord returns the record installed by BeginRecord, or nil.
func ActiveRecord() *RunRecord { return active.Load() }

// EndRecord clears the active record (it stays usable by its holder).
func EndRecord() { active.Store(nil) }

// SetParam records one replay parameter (typically a flag name/value).
func (r *RunRecord) SetParam(name, value string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.Params == nil {
		r.Params = map[string]string{}
	}
	r.Params[name] = value
}

// Finish stamps the total duration and attaches the current metrics
// snapshot. Idempotent: the first call wins.
func (r *RunRecord) Finish() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.finished {
		return
	}
	r.finished = true
	r.DurationSeconds = time.Since(r.Start).Seconds()
	snap := TakeSnapshot()
	r.Metrics = &snap
	if stats := collectAuxStats(); stats != nil {
		r.Stats = stats
	}
}

// WriteFile renders the record as indented JSON at path.
func (r *RunRecord) WriteFile(path string) error {
	r.mu.Lock()
	raw, err := json.MarshalIndent(r, "", "  ")
	r.mu.Unlock()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// StartPhase opens a named phase and returns its closer. When a run
// record is active the elapsed time is appended to it; either way the
// duration lands in the "phase.<name>" histogram (when enabled) and a
// debug line goes to the package logger. Use as:
//
//	defer obs.StartPhase("table2")()
func StartPhase(name string) func() {
	if !Enabled() && ActiveRecord() == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		d := time.Since(start)
		if Enabled() {
			GetHistogram("phase." + name).Observe(d)
		}
		if r := ActiveRecord(); r != nil {
			r.mu.Lock()
			r.Phases = append(r.Phases, Phase{Name: name, DurationSeconds: d.Seconds()})
			r.mu.Unlock()
		}
		Log().LogAttrs(context.Background(), slog.LevelDebug, "phase done",
			slog.String("phase", name), slog.Duration("took", d))
	}
}

// RecordScore stores a headline result (an axiom score, a table's mean)
// on the active run record. No-op when no record is active.
func RecordScore(name string, v float64) {
	r := ActiveRecord()
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.Scores == nil {
		r.Scores = map[string]float64{}
	}
	r.Scores[name] = v
}

// RecordSeed stores the run's base seed on the active record.
func RecordSeed(seed uint64) {
	if r := ActiveRecord(); r != nil {
		r.mu.Lock()
		r.BaseSeed = seed
		r.mu.Unlock()
	}
}

// AddCells adds n to the active record's total sweep-cell count.
func AddCells(n int) {
	if r := ActiveRecord(); r != nil {
		r.mu.Lock()
		r.Cells += n
		r.mu.Unlock()
	}
}

// buildVersion derives a git-describe-style version from the binary's
// embedded VCS metadata: "<rev12>[-dirty]" when built from a checkout,
// else the module version or "devel".
func buildVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	var rev, modified string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if modified == "true" {
			rev += "-dirty"
		}
		return rev
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	return "devel"
}
