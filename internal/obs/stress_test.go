package obs

import (
	"strconv"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrentStress hammers the registry's whole surface —
// creation, recording, snapshotting, and Reset — from many goroutines at
// once. It asserts nothing beyond "no race, no panic, snapshots are
// well-formed"; the -race build in CI is the real check.
func TestRegistryConcurrentStress(t *testing.T) {
	Enable()
	defer func() { Disable(); Reset(); ResetFlight() }()

	const (
		workers = 8
		iters   = 500
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := "stress." + strconv.Itoa(w%4) // shared across workers
			for i := 0; i < iters; i++ {
				switch i % 5 {
				case 0:
					GetCounter(name).Inc()
				case 1:
					GetHistogram(name).Observe(time.Duration(i) * time.Microsecond)
				case 2:
					GetGauge(name).Set(float64(i))
				case 3:
					s := TakeSnapshot()
					for k, h := range s.Histograms {
						if h.Count == 0 {
							t.Errorf("snapshot histogram %s has zero count", k)
						}
					}
				case 4:
					if i%100 == 4 {
						Reset()
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestSpanFlightConcurrentStress drives spans, the flight ring, the
// active-span table, and their snapshot readers concurrently, including
// an Enable/Disable flapper — the configuration a live scrape of a
// running sweep exercises.
func TestSpanFlightConcurrentStress(t *testing.T) {
	Enable()
	defer func() { Disable(); Reset(); ResetFlight() }()

	const (
		workers = 8
		iters   = 300
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch i % 4 {
				case 0:
					sp := StartLeafSpan("stress.span." + strconv.Itoa(w%2))
					sp.SetDetail(strconv.Itoa(i))
					sp.End()
				case 1:
					NoteEvent("retry", "stress.note", "")
				case 2:
					ActiveSpans()
				case 3:
					FlightEvents()
				}
			}
		}(w)
	}
	wg.Wait()

	events := FlightEvents()
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("flight snapshot out of order at %d", i)
		}
	}
}
