package obs

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"sync"
)

// Flags is the shared observability flag set every cmd/* tool mounts:
//
//	-cpuprofile f    pprof CPU profile
//	-memprofile f    pprof heap profile (written at stop)
//	-exectrace f     runtime execution trace
//	-exectimeline f  Chrome trace-event span timeline (Perfetto-loadable)
//	-progress        live sweep progress line on stderr
//	-runrecord f     structured run manifest (JSON)
//	-obs-listen a    HTTP exposition: /metrics, /snapshot, /trace
//
// Engaging any flag enables the metrics registry for the process, and a
// run manifest is written on stop (to -runrecord's path, default
// runrecord.json). Mount with RegisterFlags before flag.Parse, then
// bracket the tool's work between Start and the returned stop func.
type Flags struct {
	CPUProfile    string
	MemProfile    string
	ExecTrace     string
	ExecTimeline  string
	Progress      bool
	RunRecordPath string
	ObsListen     string

	fs       *flag.FlagSet
	tool     string
	cpuFile  *os.File
	trcFile  *os.File
	progLine *Progress
	record   *RunRecord
	server   *Server
}

// RegisterFlags mounts the shared observability flags on fs (typically
// flag.CommandLine) and returns the holder to Start after parsing.
func RegisterFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{fs: fs}
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a pprof heap profile to this file on exit")
	fs.StringVar(&f.ExecTrace, "exectrace", "", "write a runtime execution trace to this file")
	fs.StringVar(&f.ExecTimeline, "exectimeline", "", "write a Chrome trace-event span timeline (Perfetto-loadable JSON) to this file")
	fs.BoolVar(&f.Progress, "progress", false, "render a live sweep progress line on stderr")
	fs.StringVar(&f.RunRecordPath, "runrecord", "", "write a structured run manifest (JSON) to this file; default runrecord.json when any other observability flag is set")
	fs.StringVar(&f.ObsListen, "obs-listen", "", "serve live observability over HTTP on this address (host:port; port 0 picks one): /metrics, /snapshot, /trace")
	return f
}

// engaged reports whether any observability flag was set.
func (f *Flags) engaged() bool {
	return f.CPUProfile != "" || f.MemProfile != "" || f.ExecTrace != "" ||
		f.ExecTimeline != "" || f.Progress || f.RunRecordPath != "" ||
		f.ObsListen != ""
}

// Start enables observability per the parsed flags and returns the stop
// func that flushes profiles and writes the run manifest. With no obs
// flag engaged it is a no-op returning a no-op stop. stop is idempotent,
// so callers can both defer it and invoke it explicitly before os.Exit.
func (f *Flags) Start(tool string) (stop func() error, err error) {
	if !f.engaged() {
		return func() error { return nil }, nil
	}
	f.tool = tool
	Enable()
	f.record = BeginRecord(tool)
	if f.fs != nil {
		// Every flag value (set or default) goes into the manifest, so
		// the exact invocation is reconstructible from the record alone.
		f.fs.VisitAll(func(fl *flag.Flag) {
			f.record.SetParam(fl.Name, fl.Value.String())
		})
	}
	if f.CPUProfile != "" {
		f.cpuFile, err = os.Create(f.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("obs: -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f.cpuFile); err != nil {
			f.cpuFile.Close()
			return nil, fmt.Errorf("obs: -cpuprofile: %w", err)
		}
	}
	if f.ExecTrace != "" {
		f.trcFile, err = os.Create(f.ExecTrace)
		if err != nil {
			f.stopCPU()
			return nil, fmt.Errorf("obs: -exectrace: %w", err)
		}
		if err := trace.Start(f.trcFile); err != nil {
			f.stopCPU()
			f.trcFile.Close()
			return nil, fmt.Errorf("obs: -exectrace: %w", err)
		}
	}
	if f.ExecTimeline != "" {
		EnableTimeline()
	}
	if f.ObsListen != "" {
		f.server, err = StartServer(f.ObsListen, tool)
		if err != nil {
			f.stopCPU()
			if f.trcFile != nil {
				trace.Stop()
				f.trcFile.Close()
				f.trcFile = nil
			}
			return nil, err
		}
		// The bound address goes to stderr so scripts (and the CI smoke
		// job) can discover a :0-assigned port.
		fmt.Fprintf(os.Stderr, "%s: obs: listening on http://%s\n", tool, f.server.Addr())
	}
	if f.Progress {
		f.progLine = NewProgress(os.Stderr, tool)
		SetSweepProgress(f.progLine.Update)
	}
	installSigquitDump()
	Log().LogAttrs(context.Background(), slog.LevelDebug, "observability started",
		slog.String("tool", tool), slog.Bool("progress", f.Progress),
		slog.String("cpuprofile", f.CPUProfile))

	var once sync.Once
	stop = func() error {
		var ferr error
		once.Do(func() { ferr = f.stop() })
		return ferr
	}
	return stop, nil
}

func (f *Flags) stopCPU() {
	if f.cpuFile != nil {
		pprof.StopCPUProfile()
		f.cpuFile.Close()
		f.cpuFile = nil
	}
}

// stop flushes every engaged sink. It keeps going past individual
// failures and returns the first error.
func (f *Flags) stop() error {
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if f.progLine != nil {
		SetSweepProgress(nil)
		f.progLine.Finish()
	}
	if f.server != nil {
		keep(f.server.Close())
		f.server = nil
	}
	f.stopCPU()
	if f.trcFile != nil {
		trace.Stop()
		keep(f.trcFile.Close())
		f.trcFile = nil
	}
	if f.ExecTimeline != "" {
		DisableTimeline()
		keep(WriteTimeline(f.ExecTimeline, f.tool))
	}
	if f.MemProfile != "" {
		mf, err := os.Create(f.MemProfile)
		if err != nil {
			keep(fmt.Errorf("obs: -memprofile: %w", err))
		} else {
			runtime.GC() // materialize up-to-date allocation stats
			keep(pprof.WriteHeapProfile(mf))
			keep(mf.Close())
		}
	}
	if f.record != nil {
		f.record.Finish()
		path := f.RunRecordPath
		if path == "" {
			path = "runrecord.json"
		}
		keep(f.record.WriteFile(path))
		EndRecord()
	}
	Disable()
	return firstErr
}

// Record returns the run record Start created (nil before Start or when
// no obs flag was engaged). Tools use it to attach seeds and scores.
func (f *Flags) Record() *RunRecord { return f.record }
