package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Progress renders a single live status line ("\r"-rewritten, so point
// it at a terminal stream like stderr). Updates are throttled to one
// repaint per interval except for the final cell, so hot sweeps don't
// bottleneck on terminal writes.
type Progress struct {
	mu       sync.Mutex
	w        io.Writer
	label    string
	start    time.Time
	lastDraw time.Time
	lastLen  int
	drew     bool
}

// progressInterval is the minimum time between repaints.
const progressInterval = 100 * time.Millisecond

// NewProgress builds a progress line labeled label writing to w.
func NewProgress(w io.Writer, label string) *Progress {
	return &Progress{w: w, label: label, start: time.Now()}
}

// Update repaints the line for done/total completed cells. Safe for
// concurrent use; matches the engine.SweepConfig.Progress signature.
// Nested sweeps share the line — the repaint simply reflects whichever
// grid reported last.
func (p *Progress) Update(done, total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	if done < total && p.drew && now.Sub(p.lastDraw) < progressInterval {
		return
	}
	p.drew = true
	p.lastDraw = now
	elapsed := now.Sub(p.start)
	rate := float64(done) / maxSeconds(elapsed)
	line := fmt.Sprintf("\r%s %d/%d cells (%.1f%%) | %.1f cells/s | elapsed %s",
		p.label, done, total, 100*float64(done)/float64(max(total, 1)), rate,
		elapsed.Round(100*time.Millisecond))
	if done < total && rate > 0 {
		eta := time.Duration(float64(total-done)/rate) * time.Second
		line += fmt.Sprintf(" eta %s", eta.Round(time.Second))
	}
	p.paint(line)
}

// Finish clears the throttle, repaints nothing, and terminates the line
// with a newline if anything was drawn.
func (p *Progress) Finish() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.drew {
		fmt.Fprintln(p.w)
		p.drew = false
	}
}

// paint writes line padded with spaces to cover the previous draw.
// Must hold p.mu.
func (p *Progress) paint(line string) {
	pad := p.lastLen - len(line)
	p.lastLen = len(line)
	if pad > 0 {
		line += strings.Repeat(" ", pad)
	}
	fmt.Fprint(p.w, line)
}

func maxSeconds(d time.Duration) float64 {
	if s := d.Seconds(); s > 1e-9 {
		return s
	}
	return 1e-9
}

// sweepProgress is the process-wide progress sink engine.Sweep chains
// in front of each grid's own Progress callback. Set by the flag helper
// when -progress is given.
var sweepProgress atomic.Pointer[func(done, total int)]

// SetSweepProgress installs f as the global sweep progress sink
// (nil clears it).
func SetSweepProgress(f func(done, total int)) {
	if f == nil {
		sweepProgress.Store(nil)
		return
	}
	sweepProgress.Store(&f)
}

// SweepProgressFunc returns the installed global sink, or nil.
func SweepProgressFunc() func(done, total int) {
	if p := sweepProgress.Load(); p != nil {
		return *p
	}
	return nil
}

// progressDone/progressTotal mirror the latest sweep progress report so
// the /snapshot endpoint can expose it without a callback round-trip.
var progressDone, progressTotal atomic.Int64

// ReportProgress records the latest done/total sweep-cell counts for the
// exposition endpoint. The engine calls it on every cell completion while
// instrumented; whichever grid reported last wins, matching the progress
// line's behavior for nested sweeps.
func ReportProgress(done, total int) {
	progressDone.Store(int64(done))
	progressTotal.Store(int64(total))
}

// ProgressSnapshot is the sweep-progress section of /snapshot.
type ProgressSnapshot struct {
	Done  int64 `json:"done"`
	Total int64 `json:"total"`
}

// ProgressState returns the latest reported sweep progress.
func ProgressState() ProgressSnapshot {
	return ProgressSnapshot{Done: progressDone.Load(), Total: progressTotal.Load()}
}
