package obs

import (
	"context"
	"testing"
)

func TestSpanHierarchyAndActiveTable(t *testing.T) {
	Enable()
	defer func() { Disable(); Reset(); ResetFlight() }()

	ctx, parent := StartSpan(context.Background(), "test.parent")
	if parent == nil {
		t.Fatal("StartSpan returned nil span while enabled")
	}
	ctx2, child := StartSpan(ctx, "test.child")
	if child.parent != parent.id {
		t.Fatalf("child.parent = %d, want %d", child.parent, parent.id)
	}
	_, grand := StartSpan(ctx2, "test.grandchild")
	if grand.parent != child.id {
		t.Fatalf("grandchild.parent = %d, want %d", grand.parent, child.id)
	}

	child.SetDetail("cell 3")
	open := ActiveSpans()
	if len(open) < 3 {
		t.Fatalf("ActiveSpans returned %d spans, want >= 3", len(open))
	}
	found := false
	for _, s := range open {
		if s.ID == child.id {
			found = true
			if s.Detail != "cell 3" {
				t.Fatalf("active span detail = %q, want %q", s.Detail, "cell 3")
			}
			if s.ParentID != parent.id {
				t.Fatalf("active span parent = %d, want %d", s.ParentID, parent.id)
			}
		}
	}
	if !found {
		t.Fatal("child span missing from ActiveSpans")
	}

	grand.End()
	child.End()
	parent.End()
	for _, s := range ActiveSpans() {
		if s.ID == parent.id || s.ID == child.id || s.ID == grand.id {
			t.Fatalf("span %d still active after End", s.ID)
		}
	}
	if got := GetHistogram("span.test.child").Count(); got != 1 {
		t.Fatalf("span.test.child histogram count = %d, want 1", got)
	}
}

func TestSpanDoubleEndObservesOnce(t *testing.T) {
	Enable()
	defer func() { Disable(); Reset(); ResetFlight() }()
	sp := StartLeafSpan("test.double")
	sp.End()
	sp.End()
	if got := GetHistogram("span.test.double").Count(); got != 1 {
		t.Fatalf("double End observed %d times, want 1", got)
	}
}

func TestSpanNilSafeWhenDisabled(t *testing.T) {
	Disable()
	ctx, sp := StartSpan(context.Background(), "test.disabled")
	if sp != nil {
		t.Fatal("StartSpan returned non-nil span while disabled")
	}
	if ctx == nil {
		t.Fatal("StartSpan returned nil ctx")
	}
	sp.SetDetail("ignored")
	if sp.Detail() != "" || sp.Name() != "" {
		t.Fatal("nil span accessors returned non-empty values")
	}
	sp.End()
	if lf := StartLeafSpan("test.disabled.leaf"); lf != nil {
		t.Fatal("StartLeafSpan returned non-nil span while disabled")
	}
}

// TestStartSpanDisabledAllocFree pins the disabled-path contract: with
// obs off, span creation in instrumented hot paths must cost one atomic
// load and zero allocations. CI runs this under -race.
func TestStartSpanDisabledAllocFree(t *testing.T) {
	Disable()
	ctx := context.Background()
	if avg := testing.AllocsPerRun(1000, func() {
		c, sp := StartSpan(ctx, "test.alloc")
		sp.End()
		_ = c
	}); avg != 0 {
		t.Fatalf("StartSpan allocates %.2f times per call while disabled, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		sp := StartLeafSpan("test.alloc.leaf")
		sp.SetDetail("x")
		sp.End()
	}); avg != 0 {
		t.Fatalf("StartLeafSpan allocates %.2f times per call while disabled, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		NoteEvent("retry", "test.alloc", "noop")
	}); avg != 0 {
		t.Fatalf("NoteEvent allocates %.2f times per call while disabled, want 0", avg)
	}
}

func TestCurGIDStable(t *testing.T) {
	a, b := curGID(), curGID()
	if a <= 0 || a != b {
		t.Fatalf("curGID returned %d then %d, want equal positive ids", a, b)
	}
	done := make(chan int64)
	go func() { done <- curGID() }()
	if other := <-done; other == a {
		t.Fatalf("different goroutines reported the same gid %d", a)
	}
}
