package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestTimelineExportsTraceEvents(t *testing.T) {
	Enable()
	EnableTimeline()
	defer func() { DisableTimeline(); Disable(); Reset(); ResetFlight() }()

	sp := StartLeafSpan("test.tl.main")
	sp.SetDetail("4 cells")
	sp.End()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		StartLeafSpan("test.tl.worker").End()
	}()
	wg.Wait()
	DisableTimeline()

	raw, err := TimelineJSON("testtool")
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int            `json:"tid"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tf); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}

	var procName bool
	tracks := map[int]bool{}
	spans := map[string]int{}
	for _, e := range tf.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "process_name" && e.Args["name"] == "testtool" {
				procName = true
			}
		case "X":
			tracks[e.Tid] = true
			spans[e.Name] = e.Tid
		}
	}
	if !procName {
		t.Fatal("timeline missing process_name metadata")
	}
	if _, ok := spans["test.tl.main"]; !ok {
		t.Fatalf("timeline missing test.tl.main span: %v", spans)
	}
	if _, ok := spans["test.tl.worker"]; !ok {
		t.Fatalf("timeline missing test.tl.worker span: %v", spans)
	}
	// The two spans ran on different goroutines, so they must land on
	// different tracks — that is what makes sweeps one-track-per-worker.
	if spans["test.tl.main"] == spans["test.tl.worker"] {
		t.Fatal("spans from different goroutines share a timeline track")
	}
	if len(tracks) < 2 {
		t.Fatalf("timeline has %d tracks, want >= 2", len(tracks))
	}
}

func TestTimelineDisabledCollectsNothing(t *testing.T) {
	Enable()
	defer func() { Disable(); Reset(); ResetFlight() }()
	DisableTimeline()
	before := func() int {
		timeline.mu.Lock()
		defer timeline.mu.Unlock()
		return len(timeline.spans)
	}()
	StartLeafSpan("test.tl.off").End()
	after := func() int {
		timeline.mu.Lock()
		defer timeline.mu.Unlock()
		return len(timeline.spans)
	}()
	if after != before {
		t.Fatalf("disabled timeline grew from %d to %d spans", before, after)
	}
}

func TestWriteTimelineFile(t *testing.T) {
	Enable()
	EnableTimeline()
	defer func() { DisableTimeline(); Disable(); Reset(); ResetFlight() }()
	StartLeafSpan("test.tl.file").End()
	DisableTimeline()

	path := filepath.Join(t.TempDir(), "tl.json")
	if err := WriteTimeline(path, "testtool"); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tf map[string]any
	if err := json.Unmarshal(raw, &tf); err != nil {
		t.Fatalf("written timeline is not valid JSON: %v", err)
	}
	if _, ok := tf["traceEvents"]; !ok {
		t.Fatal("written timeline missing traceEvents key")
	}
}
