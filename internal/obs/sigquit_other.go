//go:build !unix

package obs

// installSigquitDump is a no-op where SIGQUIT does not exist.
func installSigquitDump() {}
