// Package obs is the repository's observability layer: a process-wide
// metrics registry (counters, gauges, duration histograms) with a JSON
// snapshot, a structured run manifest ("runrecord.json") that makes any
// table or figure reproduction replayable, a live sweep progress line,
// and the shared profiling flag set (-cpuprofile, -memprofile,
// -exectrace, -progress, -runrecord) every cmd/* tool mounts.
//
// The layer is stdlib-only and off by default: library code records
// nothing until Enable is called (the flag helper does it when any obs
// flag is engaged), so instrumented hot paths pay one atomic load when
// observability is disabled. Logging goes through a package-level
// log/slog handler that discards by default — library code stays silent
// unless a host installs a handler via SetLogHandler.
//
// Instrumentation lives where the work happens: internal/engine records
// per-run wall time and steps per substrate kind plus per-sweep-cell
// latency and completion counters; internal/parallel records worker
// utilization and queue wait for its pools; internal/experiment brackets
// every grid in a named phase. Snapshot gathers all of it for the run
// manifest.
package obs

import "sync/atomic"

var enabled atomic.Bool

// Enable turns metric recording on process-wide. Instrumented code
// checks Enabled before doing any timing work, so enabling mid-run
// starts recording at the next run/sweep/pool boundary.
func Enable() { enabled.Store(true) }

// Disable turns metric recording back off. Already-recorded values stay
// in the registry until Reset.
func Disable() { enabled.Store(false) }

// Enabled reports whether metric recording is on. It is a single atomic
// load — cheap enough for per-run (not per-step) hot-path checks.
func Enabled() bool { return enabled.Load() }
