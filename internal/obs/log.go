package obs

import (
	"io"
	"log/slog"
	"sync/atomic"
)

// logger is the package-level slog logger instrumented code writes to.
// The default handler discards everything, so library code is silent
// until a host program installs a handler.
var logger atomic.Pointer[slog.Logger]

func init() {
	logger.Store(slog.New(slog.NewTextHandler(io.Discard, nil)))
}

// SetLogHandler installs the handler behind Log. Passing nil restores
// the silent default.
func SetLogHandler(h slog.Handler) {
	if h == nil {
		logger.Store(slog.New(slog.NewTextHandler(io.Discard, nil)))
		return
	}
	logger.Store(slog.New(h))
}

// Log returns the package logger. Safe for concurrent use; never nil.
func Log() *slog.Logger { return logger.Load() }
