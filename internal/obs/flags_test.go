package obs

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestFlagsDisengagedIsNoOp(t *testing.T) {
	fs := flag.NewFlagSet("tool", flag.ContinueOnError)
	f := RegisterFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	stop, err := f.Start("tool")
	if err != nil {
		t.Fatal(err)
	}
	if Enabled() {
		t.Fatal("metrics enabled with no obs flag engaged")
	}
	if f.Record() != nil {
		t.Fatal("record created with no obs flag engaged")
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestFlagsFullLifecycle(t *testing.T) {
	Reset()
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	trc := filepath.Join(dir, "trace.out")
	rec := filepath.Join(dir, "runrecord.json")

	fs := flag.NewFlagSet("tool", flag.ContinueOnError)
	seed := fs.Uint64("seed", 7, "tool's own flag, captured as a param")
	f := RegisterFlags(fs)
	if err := fs.Parse([]string{
		"-cpuprofile", cpu, "-memprofile", mem, "-exectrace", trc,
		"-runrecord", rec, "-progress",
	}); err != nil {
		t.Fatal(err)
	}
	_ = seed

	stop, err := f.Start("tool")
	if err != nil {
		t.Fatal(err)
	}
	if !Enabled() {
		t.Fatal("metrics not enabled")
	}
	if SweepProgressFunc() == nil {
		t.Fatal("-progress did not install the sweep sink")
	}
	GetCounter("flags.work").Add(2)
	RecordScore("mean", 1.5)
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil { // idempotent
		t.Fatal(err)
	}
	if Enabled() || SweepProgressFunc() != nil || ActiveRecord() != nil {
		t.Fatal("stop did not tear down global state")
	}

	for _, path := range []string{cpu, mem, trc} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", path)
		}
	}
	raw, err := os.ReadFile(rec)
	if err != nil {
		t.Fatal(err)
	}
	var r RunRecord
	if err := json.Unmarshal(raw, &r); err != nil {
		t.Fatal(err)
	}
	if r.Tool != "tool" || r.DurationSeconds <= 0 {
		t.Fatalf("record = %+v", &r)
	}
	// Both the tool's own flags and the obs flags land in Params.
	if r.Params["seed"] != "7" || r.Params["cpuprofile"] != cpu {
		t.Fatalf("params = %v", r.Params)
	}
	if r.Scores["mean"] != 1.5 {
		t.Fatalf("scores = %v", r.Scores)
	}
	if r.Metrics == nil || r.Metrics.Counters["flags.work"] != 2 {
		t.Fatalf("metrics = %+v", r.Metrics)
	}
}

// -progress alone engages the layer and defaults the manifest to
// runrecord.json in the working directory.
func TestFlagsDefaultRunRecordPath(t *testing.T) {
	Reset()
	dir := t.TempDir()
	orig, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(orig)

	fs := flag.NewFlagSet("tool", flag.ContinueOnError)
	f := RegisterFlags(fs)
	if err := fs.Parse([]string{"-progress"}); err != nil {
		t.Fatal(err)
	}
	stop, err := f.Start("tool")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "runrecord.json")); err != nil {
		t.Fatalf("default runrecord.json not written: %v", err)
	}
}

// TestFlagsObsListenAndTimeline exercises the two new exposition flags
// end to end: Start binds the HTTP endpoint and engages the timeline
// collector; stop closes the listener and writes the timeline file.
func TestFlagsObsListenAndTimeline(t *testing.T) {
	dir := t.TempDir()
	tl := filepath.Join(dir, "tl.json")
	rr := filepath.Join(dir, "rr.json")
	fs := flag.NewFlagSet("tool", flag.ContinueOnError)
	f := RegisterFlags(fs)
	if err := fs.Parse([]string{"-obs-listen", "127.0.0.1:0", "-exectimeline", tl, "-runrecord", rr}); err != nil {
		t.Fatal(err)
	}
	stop, err := f.Start("tool")
	if err != nil {
		t.Fatal(err)
	}
	if !Enabled() {
		t.Fatal("obs not enabled by -obs-listen")
	}
	if !TimelineEnabled() {
		t.Fatal("timeline not engaged by -exectimeline")
	}
	if f.server == nil || f.server.Addr() == "" {
		t.Fatal("no HTTP server bound")
	}
	StartLeafSpan("test.flags.span").End()
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if Enabled() || TimelineEnabled() {
		t.Fatal("stop left obs or timeline enabled")
	}
	raw, err := os.ReadFile(tl)
	if err != nil {
		t.Fatalf("timeline not written: %v", err)
	}
	var tf struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tf); err != nil {
		t.Fatalf("timeline not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("timeline has no events")
	}
	if _, err := os.Stat(rr); err != nil {
		t.Fatalf("runrecord not written: %v", err)
	}
}
