package obs

import (
	"strconv"
	"strings"
	"testing"
)

func TestFlightRingRecordsAndWraps(t *testing.T) {
	Enable()
	defer func() { Disable(); Reset(); ResetFlight() }()
	ResetFlight()

	for i := 0; i < FlightRingSize+10; i++ {
		NoteEvent("retry", "test.wrap", "n="+strconv.Itoa(i))
	}
	events := FlightEvents()
	if len(events) != FlightRingSize {
		t.Fatalf("ring holds %d events, want %d", len(events), FlightRingSize)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("events out of order: seq %d after %d", events[i].Seq, events[i-1].Seq)
		}
	}
	// The oldest ring entries must have been overwritten by the newest.
	if events[len(events)-1].Detail != "n="+strconv.Itoa(FlightRingSize+9) {
		t.Fatalf("newest event detail = %q, want n=%d", events[len(events)-1].Detail, FlightRingSize+9)
	}
}

func TestSpanEndLandsInFlightRing(t *testing.T) {
	Enable()
	defer func() { Disable(); Reset(); ResetFlight() }()
	ResetFlight()

	sp := StartLeafSpan("test.flight.span")
	sp.SetDetail("cell 7")
	sp.End()
	var found *FlightEvent
	for _, e := range FlightEvents() {
		if e.Kind == "span" && e.Name == "test.flight.span" {
			ev := e
			found = &ev
		}
	}
	if found == nil {
		t.Fatal("completed span missing from flight ring")
	}
	if found.Detail != "cell 7" || found.SpanID == 0 {
		t.Fatalf("flight event = %+v, want detail 'cell 7' and a span id", found)
	}
}

func TestNoteEventDisabledIsNoop(t *testing.T) {
	Disable()
	ResetFlight()
	NoteEvent("retry", "test.noop", "")
	if got := FlightEvents(); len(got) != 0 {
		t.Fatalf("disabled NoteEvent recorded %d events, want 0", len(got))
	}
}

func TestDumpFlightRendersEventsAndOpenSpans(t *testing.T) {
	Enable()
	defer func() { Disable(); Reset(); ResetFlight() }()
	ResetFlight()

	NoteEvent("deadline", "test.dump", "cell 4 hit 1s")
	open := StartLeafSpan("test.dump.open")
	defer open.End()

	var sb strings.Builder
	DumpFlight(&sb)
	out := sb.String()
	for _, want := range []string{"flight recorder", "deadline", "test.dump", "cell 4 hit 1s", "open", "test.dump.open"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestAttachFlightToRecord(t *testing.T) {
	Enable()
	defer func() { Disable(); Reset(); ResetFlight(); EndRecord() }()
	ResetFlight()

	r := BeginRecord("test")
	NoteEvent("panic", "test.attach", "cell 2")
	open := StartLeafSpan("test.attach.open")
	AttachFlightToRecord()
	open.End()

	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.Flight) == 0 {
		t.Fatal("record has no flight events after attach")
	}
	found := false
	for _, e := range r.Flight {
		if e.Kind == "panic" && e.Name == "test.attach" {
			found = true
		}
	}
	if !found {
		t.Fatalf("panic event missing from attached flight: %+v", r.Flight)
	}
	foundOpen := false
	for _, s := range r.FlightOpenSpans {
		if s.Name == "test.attach.open" {
			foundOpen = true
		}
	}
	if !foundOpen {
		t.Fatal("open span missing from attached flight")
	}
}
