package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	Reset()
	c := GetCounter("test.counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := GetCounter("test.counter"); again != c {
		t.Fatal("GetCounter did not return the same counter")
	}
	g := GetGauge("test.gauge")
	g.Set(0.75)
	if got := g.Value(); got != 0.75 {
		t.Fatalf("gauge = %v, want 0.75", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	Reset()
	h := GetHistogram("test.hist")
	for i := 0; i < 90; i++ {
		h.Observe(1 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	s := h.snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.MinSeconds != 0.001 || s.MaxSeconds != 0.1 {
		t.Fatalf("min/max = %v/%v", s.MinSeconds, s.MaxSeconds)
	}
	// p50 lands in the 1 ms bucket (upper bound ≤ ~1 ms rounded up to a
	// power-of-two microsecond bound), p99 in the 100 ms one.
	if s.P50Seconds > 0.005 {
		t.Fatalf("p50 = %v, want ≈1ms", s.P50Seconds)
	}
	if s.P99Seconds < 0.05 {
		t.Fatalf("p99 = %v, want ≈100ms", s.P99Seconds)
	}
	if len(s.Buckets) != 2 {
		t.Fatalf("buckets = %+v, want 2 non-empty", s.Buckets)
	}
}

func TestSnapshotOmitsIdleMetrics(t *testing.T) {
	Reset()
	GetCounter("idle.counter")
	GetHistogram("idle.hist")
	GetCounter("busy.counter").Inc()
	s := TakeSnapshot()
	if _, ok := s.Counters["idle.counter"]; ok {
		t.Fatal("idle counter present in snapshot")
	}
	if _, ok := s.Histograms["idle.hist"]; ok {
		t.Fatal("idle histogram present in snapshot")
	}
	if s.Counters["busy.counter"] != 1 {
		t.Fatalf("busy counter = %d", s.Counters["busy.counter"])
	}
	raw, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
}

func TestResetPreservesIdentity(t *testing.T) {
	Reset()
	c := GetCounter("reset.counter")
	h := GetHistogram("reset.hist")
	c.Add(3)
	h.Observe(time.Second)
	Reset()
	if c.Value() != 0 || h.Count() != 0 {
		t.Fatalf("values survived Reset: %d / %d", c.Value(), h.Count())
	}
	if GetCounter("reset.counter") != c || GetHistogram("reset.hist") != h {
		t.Fatal("Reset changed metric identities")
	}
	c.Inc()
	if GetCounter("reset.counter").Value() != 1 {
		t.Fatal("cached pointer detached after Reset")
	}
}

// TestConcurrentRecording exercises the registry under the race
// detector.
func TestConcurrentRecording(t *testing.T) {
	Reset()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				GetCounter("conc.counter").Inc()
				GetHistogram("conc.hist").Observe(time.Duration(i) * time.Microsecond)
				GetGauge("conc.gauge").Set(float64(i))
				if i%100 == 0 {
					TakeSnapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := GetCounter("conc.counter").Value(); got != 4000 {
		t.Fatalf("counter = %d, want 4000", got)
	}
	if got := GetHistogram("conc.hist").Count(); got != 4000 {
		t.Fatalf("histogram count = %d, want 4000", got)
	}
}

func TestEnableDisable(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("enabled after Disable")
	}
	Enable()
	if !Enabled() {
		t.Fatal("disabled after Enable")
	}
	Disable()
}
