package obs

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements hierarchical timed spans, the "where did the time
// go inside one request" layer on top of the registry's aggregates. A
// span is opened with StartSpan (parent linkage flows through the
// context) or StartLeafSpan (no context at hand — store and session
// internals), and closed with End, which feeds three sinks at once:
//
//   - the "span.<name>" duration histogram in the registry, so /metrics
//     exposes live latency distributions per span name;
//   - the flight-recorder ring (flight.go), so the last spans before a
//     panic, SIGQUIT, or cell retry are reconstructible;
//   - the timeline collector (timeline.go) when -exectimeline is
//     engaged, which renders Chrome trace-event JSON with one track per
//     goroutine (worker-pool goroutines make that one track per worker).
//
// The whole layer is atomic-gated: with obs disabled, StartSpan is one
// atomic load returning (ctx, nil), End on the nil span is a nil check,
// and neither allocates — pinned by TestStartSpanDisabledAllocFree and
// the engine's run-path alloc pins.

// Span is one open (or just-closed) timed operation. Fields are written
// by StartSpan/End only; readers (the active-span table, the HTTP
// snapshot) access them through the accessors below.
type Span struct {
	id     uint64
	parent uint64
	name   string
	gid    int64
	start  time.Time

	// detail is an optional free-form annotation (a cell index, a group
	// size). Written via SetDetail before End, read at End time and by
	// the active-span snapshot; detailMu keeps -race clean when an HTTP
	// scrape snapshots a span another goroutine is annotating.
	detailMu sync.Mutex
	detail   string
}

// spanCtxKey carries the current span through a context for parent
// linkage.
type spanCtxKey struct{}

var spanIDs atomic.Uint64

// activeSpans tracks open spans for the /snapshot endpoint and the
// flight dump ("what was in flight when it died").
var activeSpans struct {
	mu sync.Mutex
	m  map[uint64]*Span
}

// StartSpan opens a span named name as a child of the span carried by
// ctx (if any) and returns a derived context carrying the new span plus
// the span itself. With obs disabled it returns (ctx, nil) after a
// single atomic load and allocates nothing; End on a nil *Span is a
// no-op, so instrumented code never branches on the gate itself:
//
//	ctx, sp := obs.StartSpan(ctx, "engine.run.fluid")
//	defer sp.End()
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if !Enabled() {
		return ctx, nil
	}
	s := newSpan(name)
	if p, ok := ctx.Value(spanCtxKey{}).(*Span); ok && p != nil {
		s.parent = p.id
	}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// StartLeafSpan opens a parentless span for code that has no context to
// thread (store reads, lock waits, session internals). It lands on the
// calling goroutine's timeline track like any other span, so a leaf
// started inside a sweep worker still lines up under that worker's
// cells. Nil (and free) when obs is disabled.
func StartLeafSpan(name string) *Span {
	if !Enabled() {
		return nil
	}
	return newSpan(name)
}

func newSpan(name string) *Span {
	s := &Span{
		id:    spanIDs.Add(1),
		name:  name,
		gid:   curGID(),
		start: time.Now(),
	}
	activeSpans.mu.Lock()
	if activeSpans.m == nil {
		activeSpans.m = make(map[uint64]*Span)
	}
	activeSpans.m[s.id] = s
	activeSpans.mu.Unlock()
	return s
}

// SetDetail attaches a free-form annotation (a cell index, a group
// size) that rides into the flight recorder and timeline args. Safe on
// a nil span.
func (s *Span) SetDetail(d string) {
	if s == nil {
		return
	}
	s.detailMu.Lock()
	s.detail = d
	s.detailMu.Unlock()
}

// Detail returns the annotation set by SetDetail ("" on a nil span).
func (s *Span) Detail() string {
	if s == nil {
		return ""
	}
	s.detailMu.Lock()
	defer s.detailMu.Unlock()
	return s.detail
}

// Name returns the span's name ("" on a nil span).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// End closes the span: removes it from the active table, records its
// duration in the "span.<name>" histogram, pushes a completion event
// onto the flight ring, and hands it to the timeline collector when one
// is engaged. Safe (and free) on a nil span; a second End is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	d := end.Sub(s.start)
	activeSpans.mu.Lock()
	_, open := activeSpans.m[s.id]
	delete(activeSpans.m, s.id)
	activeSpans.mu.Unlock()
	if !open {
		return // double End
	}
	GetHistogram("span." + s.name).Observe(d)
	recordFlight(&FlightEvent{
		Time:            end,
		Kind:            "span",
		Name:            s.name,
		Detail:          s.Detail(),
		Gid:             s.gid,
		SpanID:          s.id,
		ParentID:        s.parent,
		DurationSeconds: d.Seconds(),
	})
	timelineAdd(s, end)
}

// ActiveSpan is one open span in a snapshot.
type ActiveSpan struct {
	ID             uint64    `json:"id"`
	ParentID       uint64    `json:"parent_id,omitempty"`
	Name           string    `json:"name"`
	Detail         string    `json:"detail,omitempty"`
	Gid            int64     `json:"gid"`
	Start          time.Time `json:"start"`
	ElapsedSeconds float64   `json:"elapsed_seconds"`
}

// ActiveSpans snapshots the open spans, oldest first.
func ActiveSpans() []ActiveSpan {
	now := time.Now()
	activeSpans.mu.Lock()
	out := make([]ActiveSpan, 0, len(activeSpans.m))
	for _, s := range activeSpans.m {
		out = append(out, ActiveSpan{
			ID:             s.id,
			ParentID:       s.parent,
			Name:           s.name,
			Detail:         s.Detail(),
			Gid:            s.gid,
			Start:          s.start,
			ElapsedSeconds: now.Sub(s.start).Seconds(),
		})
	}
	activeSpans.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// curGID parses the calling goroutine's id from the first line of its
// stack ("goroutine N [..."). runtime.Stack into a fixed buffer does not
// allocate, and one ~µs parse per span start is noise at span (per-run,
// per-cell) granularity. The id is the timeline track: a sweep worker
// is one goroutine, so spans — including ctx-less leaf spans from the
// store and session — group into per-worker tracks for free.
func curGID() int64 {
	var buf [40]byte
	n := runtime.Stack(buf[:], false)
	const prefix = len("goroutine ")
	var id int64
	for _, c := range buf[prefix:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + int64(c-'0')
	}
	return id
}
