package obs

import (
	"encoding/json"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// The timeline collector retains every completed span while engaged and
// renders them as Chrome trace-event JSON ("X" complete events, one
// track per goroutine), the format both chrome://tracing and Perfetto
// (ui.perfetto.dev) load directly. The cmd/* tools engage it with
// -exectimeline out.json; BenchmarkSweep writes one for CI so the sweep
// engine's batching/fallback split is visually inspectable from the
// workflow artifacts.

// maxTimelineSpans bounds collector memory on very long runs; spans past
// the cap are counted as dropped and reported in the written file.
const maxTimelineSpans = 1 << 19

var tlEnabled atomic.Bool

var timeline struct {
	mu      sync.Mutex
	start   time.Time
	spans   []tlSpan
	dropped int64
}

type tlSpan struct {
	name   string
	detail string
	gid    int64
	start  time.Time
	dur    time.Duration
}

// EnableTimeline starts collecting completed spans (clearing any
// previous collection). Timestamps in the written trace are relative to
// this call.
func EnableTimeline() {
	timeline.mu.Lock()
	timeline.start = time.Now()
	timeline.spans = timeline.spans[:0]
	timeline.dropped = 0
	timeline.mu.Unlock()
	tlEnabled.Store(true)
}

// DisableTimeline stops collecting. Collected spans stay available to
// WriteTimeline until the next EnableTimeline.
func DisableTimeline() { tlEnabled.Store(false) }

// TimelineEnabled reports whether spans are being collected.
func TimelineEnabled() bool { return tlEnabled.Load() }

// timelineAdd is called by Span.End for every completed span while the
// collector is engaged.
func timelineAdd(s *Span, end time.Time) {
	if !tlEnabled.Load() {
		return
	}
	timeline.mu.Lock()
	if len(timeline.spans) >= maxTimelineSpans {
		timeline.dropped++
	} else {
		timeline.spans = append(timeline.spans, tlSpan{
			name:   s.name,
			detail: s.Detail(),
			gid:    s.gid,
			start:  s.start,
			dur:    end.Sub(s.start),
		})
	}
	timeline.mu.Unlock()
}

// traceEvent is one Chrome trace-event JSON object. Only the fields the
// viewers read are emitted; Ts/Dur are microseconds.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// TimelineJSON renders the collected spans as Chrome trace-event JSON.
// Goroutines map to compact track ids in order of first appearance, with
// thread_name metadata naming each track g<goroutine-id>; the worker
// pool runs one goroutine per worker, so sweeps read as one track per
// worker.
func TimelineJSON(tool string) ([]byte, error) {
	timeline.mu.Lock()
	start := timeline.start
	spans := make([]tlSpan, len(timeline.spans))
	copy(spans, timeline.spans)
	dropped := timeline.dropped
	timeline.mu.Unlock()
	if start.IsZero() {
		start = time.Now()
	}

	tf := traceFile{DisplayTimeUnit: "ms"}
	tf.TraceEvents = append(tf.TraceEvents, traceEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": tool},
	})
	tids := map[int64]int{}
	for _, s := range spans {
		tid, ok := tids[s.gid]
		if !ok {
			tid = len(tids) + 1
			tids[s.gid] = tid
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
				Args: map[string]any{"name": "g" + strconv.FormatInt(s.gid, 10)},
			})
		}
		ev := traceEvent{
			Name: s.name,
			Cat:  "span",
			Ph:   "X",
			Ts:   float64(s.start.Sub(start).Nanoseconds()) / 1e3,
			Dur:  float64(s.dur.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  tid,
		}
		if s.detail != "" {
			ev.Args = map[string]any{"detail": s.detail}
		}
		tf.TraceEvents = append(tf.TraceEvents, ev)
	}
	if dropped > 0 {
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: "obs.timeline.dropped", Ph: "M", Pid: 1,
			Args: map[string]any{"dropped_spans": dropped},
		})
	}
	return json.Marshal(tf)
}

// WriteTimeline writes the collected timeline to path.
func WriteTimeline(path, tool string) error {
	raw, err := TimelineJSON(tool)
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
