package obs

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// The flight recorder is a fixed-size, lock-free ring of the most recent
// span completions and notable events (cell retries, deadline expiries,
// panics). It runs whenever obs is enabled and costs one atomic add plus
// one atomic pointer store per event, so it can stay on for the whole
// life of a long sweep. When something goes wrong — a recovered cell
// panic, a SIGQUIT from the operator, a per-cell deadline — the ring is
// dumped to stderr and attached to the active run record, so the last
// thing every worker did survives the failure.

// FlightRingSize is the ring's capacity. 256 events at span granularity
// covers the last few seconds of a busy sweep — enough context to see
// what every worker was doing when a cell died.
const FlightRingSize = 256

// FlightEvent is one entry of the flight-recorder ring: a completed span
// (Kind "span", with duration and ids) or a point event (Kind "retry",
// "deadline", "panic", ...).
type FlightEvent struct {
	Seq             uint64    `json:"seq"`
	Time            time.Time `json:"time"`
	Kind            string    `json:"kind"`
	Name            string    `json:"name"`
	Detail          string    `json:"detail,omitempty"`
	Gid             int64     `json:"gid"`
	SpanID          uint64    `json:"span_id,omitempty"`
	ParentID        uint64    `json:"parent_id,omitempty"`
	DurationSeconds float64   `json:"duration_seconds,omitempty"`
}

var flight struct {
	seq   atomic.Uint64
	slots [FlightRingSize]atomic.Pointer[FlightEvent]
}

// recordFlight claims the next ring slot and publishes e into it. The
// claim is a single atomic add, the publish a single pointer store;
// readers only ever see complete events (possibly missing the newest few
// during a concurrent wrap, which is fine for a crash dump).
func recordFlight(e *FlightEvent) {
	e.Seq = flight.seq.Add(1)
	flight.slots[(e.Seq-1)%FlightRingSize].Store(e)
}

// NoteEvent records a point event (Kind "retry", "deadline", "panic",
// ...) onto the flight ring, stamped with the calling goroutine. No-op
// while obs is disabled.
func NoteEvent(kind, name, detail string) {
	if !Enabled() {
		return
	}
	recordFlight(&FlightEvent{
		Time:   time.Now(),
		Kind:   kind,
		Name:   name,
		Detail: detail,
		Gid:    curGID(),
	})
}

// FlightEvents snapshots the ring, oldest first. The snapshot is
// best-effort under concurrent writes: an event being overwritten right
// now may be missing, never torn.
func FlightEvents() []FlightEvent {
	out := make([]FlightEvent, 0, FlightRingSize)
	for i := range flight.slots {
		if e := flight.slots[i].Load(); e != nil {
			out = append(out, *e)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// FlightLen returns the number of events recorded since process start
// (not capped at the ring size).
func FlightLen() uint64 { return flight.seq.Load() }

// ResetFlight clears the ring (tests; the seq counter keeps counting so
// later events still sort after earlier ones).
func ResetFlight() {
	for i := range flight.slots {
		flight.slots[i].Store(nil)
	}
}

// DumpFlight writes a human-readable flight dump to w: the recent event
// ring oldest-first, then the spans still open (what each worker was in
// the middle of). This is the crash-time rendering; the same data lands
// structured in the run record via AttachFlightToRecord.
func DumpFlight(w io.Writer) {
	events := FlightEvents()
	fmt.Fprintf(w, "== obs flight recorder: %d recent events (%d total) ==\n", len(events), FlightLen())
	for _, e := range events {
		switch e.Kind {
		case "span":
			fmt.Fprintf(w, "%s g%-4d span  %-32s %10.3fms", e.Time.Format("15:04:05.000"), e.Gid, e.Name, e.DurationSeconds*1e3)
		default:
			fmt.Fprintf(w, "%s g%-4d %-5s %-32s", e.Time.Format("15:04:05.000"), e.Gid, e.Kind, e.Name)
		}
		if e.Detail != "" {
			fmt.Fprintf(w, "  %s", e.Detail)
		}
		fmt.Fprintln(w)
	}
	open := ActiveSpans()
	fmt.Fprintf(w, "== obs flight recorder: %d open spans ==\n", len(open))
	for _, s := range open {
		fmt.Fprintf(w, "g%-4d open  %-32s %10.3fms", s.Gid, s.Name, s.ElapsedSeconds*1e3)
		if s.Detail != "" {
			fmt.Fprintf(w, "  %s", s.Detail)
		}
		fmt.Fprintln(w)
	}
}

// AttachFlightToRecord snapshots the ring and the open spans into the
// active run record (latest attach wins), so a -runrecord manifest from
// a run that hit retries, deadlines, or panics carries the evidence.
// No-op without an active record.
func AttachFlightToRecord() {
	r := ActiveRecord()
	if r == nil {
		return
	}
	events := FlightEvents()
	open := ActiveSpans()
	r.mu.Lock()
	r.Flight = events
	r.FlightOpenSpans = open
	r.mu.Unlock()
}
