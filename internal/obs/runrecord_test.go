package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestRunRecordLifecycle(t *testing.T) {
	Reset()
	Enable()
	defer Disable()
	defer EndRecord()

	r := BeginRecord("testtool")
	if ActiveRecord() != r {
		t.Fatal("BeginRecord did not install the active record")
	}
	r.SetParam("mbps", "20")
	RecordSeed(42)
	AddCells(8)
	AddCells(4)
	RecordScore("efficiency", 0.97)
	done := StartPhase("grid")
	time.Sleep(time.Millisecond)
	done()
	GetCounter("rr.cells").Add(12)
	r.Finish()
	r.Finish() // idempotent

	if r.Tool != "testtool" || r.Version == "" || r.GoVersion == "" {
		t.Fatalf("identity fields: %+v", r)
	}
	if r.BaseSeed != 42 || r.Cells != 12 {
		t.Fatalf("seed/cells = %d/%d", r.BaseSeed, r.Cells)
	}
	if r.Scores["efficiency"] != 0.97 {
		t.Fatalf("scores = %v", r.Scores)
	}
	if len(r.Phases) != 1 || r.Phases[0].Name != "grid" || r.Phases[0].DurationSeconds <= 0 {
		t.Fatalf("phases = %+v", r.Phases)
	}
	if r.Metrics == nil || r.Metrics.Counters["rr.cells"] != 12 {
		t.Fatalf("metrics snapshot = %+v", r.Metrics)
	}
	if r.Metrics.Histograms["phase.grid"].Count != 1 {
		t.Fatalf("phase histogram missing: %+v", r.Metrics.Histograms)
	}

	path := filepath.Join(t.TempDir(), "runrecord.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back RunRecord
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("runrecord.json does not parse: %v", err)
	}
	if back.Tool != "testtool" || back.Params["mbps"] != "20" || back.Cells != 12 {
		t.Fatalf("round trip lost fields: %+v", &back)
	}
}

// Phase timing and score recording are no-ops without an active record
// or enablement — library code must stay silent by default.
func TestRecordHelpersInertWhenIdle(t *testing.T) {
	Reset()
	Disable()
	EndRecord()
	StartPhase("noop")()
	RecordScore("x", 1)
	RecordSeed(7)
	AddCells(3)
	if s := TakeSnapshot(); len(s.Histograms) != 0 {
		t.Fatalf("idle StartPhase recorded metrics: %+v", s.Histograms)
	}
}

func TestBuildVersionNonEmpty(t *testing.T) {
	if buildVersion() == "" {
		t.Fatal("buildVersion returned empty string")
	}
}
