package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// The exposition server is the scrape surface of a live process: a
// stdlib net/http listener (no dependencies) every cmd/* tool mounts
// with -obs-listen, serving
//
//	/metrics     the registry in Prometheus text format
//	/snapshot    JSON: counters, gauges, histograms, open spans, sweep
//	             progress, aux stats (run store / run cache), runtime
//	/trace?n=N   the last N completed spans from the flight ring (JSON)
//
// Listening on 127.0.0.1:0 picks a free port; the bound address is
// returned by Addr (the flag helper prints it to stderr so scripts and
// CI can discover it).

// Server is one running exposition listener.
type Server struct {
	tool string
	ln   net.Listener
	srv  *http.Server
}

// StartServer listens on addr (host:port; port 0 picks a free one) and
// serves the exposition endpoints in a background goroutine until Close.
func StartServer(addr, tool string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: -obs-listen: %w", err)
	}
	s := &Server{tool: tool, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	mux.HandleFunc("/trace", s.handleTrace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// AttachExposition mounts the exposition handlers (/metrics, /snapshot,
// /trace) on an existing mux, for daemons that already run their own
// HTTP server and want the scrape surface on the same port instead of a
// second -obs-listen listener.
func AttachExposition(mux *http.ServeMux, tool string) {
	s := &Server{tool: tool}
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	mux.HandleFunc("/trace", s.handleTrace)
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and any in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WritePrometheus(w, TakeSnapshot())
}

// LiveSnapshot is the /snapshot payload: everything a dashboard needs to
// render a live view of the process in one request.
type LiveSnapshot struct {
	Tool         string                        `json:"tool"`
	Time         time.Time                     `json:"time"`
	Goroutines   int                           `json:"goroutines"`
	Metrics      Snapshot                      `json:"metrics"`
	ActiveSpans  []ActiveSpan                  `json:"active_spans,omitempty"`
	Progress     ProgressSnapshot              `json:"progress"`
	FlightEvents uint64                        `json:"flight_events"`
	Stats        map[string]map[string]float64 `json:"stats,omitempty"`
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	snap := LiveSnapshot{
		Tool:         s.tool,
		Time:         time.Now(),
		Goroutines:   runtime.NumGoroutine(),
		Metrics:      TakeSnapshot(),
		ActiveSpans:  ActiveSpans(),
		Progress:     ProgressState(),
		FlightEvents: FlightLen(),
		Stats:        collectAuxStats(),
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(snap) //nolint:errcheck // client went away
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	n := 64
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			http.Error(w, "trace: n must be a positive integer", http.StatusBadRequest)
			return
		}
		n = v
	}
	events := FlightEvents()
	spans := events[:0:0]
	for _, e := range events {
		if e.Kind == "span" {
			spans = append(spans, e)
		}
	}
	if len(spans) > n {
		spans = spans[len(spans)-n:]
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(spans) //nolint:errcheck // client went away
}

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (# TYPE lines, sanitized names, histograms with cumulative
// le buckets ending at +Inf, durations in seconds).
func WritePrometheus(w io.Writer, s Snapshot) {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name])
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", pn, pn, formatFloat(s.Gauges[name]))
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		pn := promName(name) + "_seconds"
		fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
		var cum uint64
		for _, b := range h.Buckets {
			cum += b.Count
			if b.Inf {
				continue // folded into the +Inf line below
			}
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, formatFloat(b.LESeconds), cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		fmt.Fprintf(w, "%s_sum %s\n", pn, formatFloat(h.SumSeconds))
		fmt.Fprintf(w, "%s_count %d\n", pn, h.Count)
	}
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// promName maps a registry name (dotted, free-form) onto the Prometheus
// identifier charset [a-zA-Z0-9_:].
func promName(name string) string {
	var sb strings.Builder
	sb.Grow(len(name))
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_':
			sb.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				sb.WriteByte('_')
			}
			sb.WriteRune(c)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}
