//go:build unix

package obs

import (
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
)

// installSigquitDump arranges for SIGQUIT to dump the flight recorder to
// stderr before the usual all-goroutine stack dump and exit. The Go
// runtime's default SIGQUIT behavior (stacks + exit 2) is replaced by an
// equivalent handler, so `kill -QUIT <pid>` on a stuck sweep shows what
// every worker was doing both recently (the ring) and right now (the
// stacks). Installed once per process by the flag helper when -obs-listen
// or any other observability flag engages.
var sigquitOnce sync.Once

func installSigquitDump() {
	sigquitOnce.Do(func() {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, syscall.SIGQUIT)
		go func() {
			<-ch
			DumpFlight(os.Stderr)
			AttachFlightToRecord()
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			fmt.Fprintf(os.Stderr, "\n%s\n", buf[:n])
			os.Exit(2)
		}()
	})
}
