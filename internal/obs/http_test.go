package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	Enable()
	defer func() { Disable(); Reset(); ResetFlight() }()

	GetCounter("test.http.counter").Add(7)
	GetHistogram("test.http.hist").Observe(3 * time.Millisecond)
	sp := StartLeafSpan("test.http.done")
	sp.End()
	open := StartLeafSpan("test.http.open")
	defer open.End()
	ReportProgress(3, 24)

	srv, err := StartServer("127.0.0.1:0", "testtool")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := getBody(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d, want 200", code)
	}
	for _, want := range []string{
		"# TYPE test_http_counter counter",
		"test_http_counter 7",
		"# TYPE test_http_hist_seconds histogram",
		`test_http_hist_seconds_bucket{le="+Inf"} 1`,
		"test_http_hist_seconds_count 1",
		"span_test_http_done_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = getBody(t, base+"/snapshot")
	if code != http.StatusOK {
		t.Fatalf("/snapshot status = %d, want 200", code)
	}
	var snap LiveSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/snapshot is not valid JSON: %v", err)
	}
	if snap.Tool != "testtool" {
		t.Fatalf("/snapshot tool = %q, want testtool", snap.Tool)
	}
	if snap.Metrics.Counters["test.http.counter"] != 7 {
		t.Fatalf("/snapshot counter = %d, want 7", snap.Metrics.Counters["test.http.counter"])
	}
	if snap.Progress.Done != 3 || snap.Progress.Total != 24 {
		t.Fatalf("/snapshot progress = %+v, want 3/24", snap.Progress)
	}
	foundOpen := false
	for _, s := range snap.ActiveSpans {
		if s.Name == "test.http.open" {
			foundOpen = true
		}
	}
	if !foundOpen {
		t.Fatalf("/snapshot missing open span: %+v", snap.ActiveSpans)
	}

	code, body = getBody(t, base+"/trace?n=5")
	if code != http.StatusOK {
		t.Fatalf("/trace status = %d, want 200", code)
	}
	var events []FlightEvent
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("/trace is not valid JSON: %v", err)
	}
	foundDone := false
	for _, e := range events {
		if e.Kind != "span" {
			t.Fatalf("/trace returned non-span event %+v", e)
		}
		if e.Name == "test.http.done" {
			foundDone = true
		}
	}
	if !foundDone {
		t.Fatalf("/trace missing completed span: %+v", events)
	}

	if code, _ := getBody(t, base+"/trace?n=bogus"); code != http.StatusBadRequest {
		t.Fatalf("/trace?n=bogus status = %d, want 400", code)
	}
}

func TestPromNameSanitization(t *testing.T) {
	cases := map[string]string{
		"engine.sweep.cells.completed": "engine_sweep_cells_completed",
		"span.engine.run.fluid":        "span_engine_run_fluid",
		"already_clean":                "already_clean",
		"9starts.with.digit":           "_9starts_with_digit",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheusCumulativeBuckets(t *testing.T) {
	Enable()
	defer func() { Disable(); Reset() }()
	h := GetHistogram("test.prom.cum")
	h.Observe(2 * time.Microsecond)
	h.Observe(3 * time.Microsecond)
	h.Observe(500 * time.Millisecond)

	var sb strings.Builder
	WritePrometheus(&sb, TakeSnapshot())
	out := sb.String()
	// Both small observations share the 4µs bucket; the big one only
	// appears in later (cumulative) buckets and +Inf.
	if !strings.Contains(out, `test_prom_cum_seconds_bucket{le="4e-06"} 2`) {
		t.Fatalf("missing cumulative 4µs bucket:\n%s", out)
	}
	if !strings.Contains(out, `test_prom_cum_seconds_bucket{le="+Inf"} 3`) {
		t.Fatalf("missing +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, "test_prom_cum_seconds_count 3") {
		t.Fatalf("missing count:\n%s", out)
	}
}
