package engine

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// CellStore is the narrow view of a persistent content-addressed store
// the checkpointer externalizes completed-cell payloads through (the
// run store in internal/runstore satisfies it). With a store installed,
// checkpoint snapshots carry store keys instead of duplicating result
// JSON, so a resumed sweep and a warm run cache share one source of
// truth — and the store's schema/source-hash key prefix invalidates
// checkpointed cells exactly when it invalidates cached runs.
type CellStore interface {
	Get(key string) ([]byte, bool)
	Put(key string, payload []byte) error
}

var (
	cellStoreMu sync.Mutex
	cellStore   CellStore
)

// SetCheckpointStore installs (or, with nil, removes) the process-wide
// store that sweep checkpoints externalize cell results through.
func SetCheckpointStore(cs CellStore) {
	cellStoreMu.Lock()
	cellStore = cs
	cellStoreMu.Unlock()
}

func checkpointStore() CellStore {
	cellStoreMu.Lock()
	defer cellStoreMu.Unlock()
	return cellStore
}

// Live checkpointers: every in-flight sweep with a checkpoint file
// registers here so an exit path (signal handler, daemon drain) can
// force a final snapshot of work the periodic flush hasn't written yet.
var (
	liveCksMu sync.Mutex
	liveCks   = make(map[*checkpointer]struct{})
)

func registerCheckpointer(ck *checkpointer) {
	if ck == nil {
		return
	}
	liveCksMu.Lock()
	liveCks[ck] = struct{}{}
	liveCksMu.Unlock()
}

func unregisterCheckpointer(ck *checkpointer) {
	if ck == nil {
		return
	}
	liveCksMu.Lock()
	delete(liveCks, ck)
	liveCksMu.Unlock()
}

// FlushCheckpoints writes the current snapshot of every in-flight
// checkpointed sweep to disk immediately. It is safe to call from a
// signal-handling goroutine while sweep workers are still recording
// cells: each flush takes the checkpointer's mutex and writes
// atomically, so the file is always a consistent (if slightly stale)
// snapshot. Tools call this on SIGTERM/SIGINT so -resume loses at most
// the cells that were mid-simulation, not a whole flush interval.
func FlushCheckpoints() {
	liveCksMu.Lock()
	cks := make([]*checkpointer, 0, len(liveCks))
	for ck := range liveCks {
		cks = append(cks, ck)
	}
	liveCksMu.Unlock()
	for _, ck := range cks {
		ck.flush()
	}
}

// sweepCheckpoint is the on-disk snapshot format: the sweep's identity
// (BaseSeed + grid size) and one entry per completed cell. Each cell
// carries its derived seed so a resume against a different derivation —
// or a stale file from another grid — is rejected per cell rather than
// silently replaying wrong results. Results are stored as raw JSON;
// encoding/json renders float64 with the shortest round-trip
// representation, so a restored cell is bit-identical to a recomputed
// one. A cell holds either its result inline or a ref naming the store
// entry that holds it (see CellStore).
type sweepCheckpoint struct {
	BaseSeed uint64           `json:"base_seed"`
	N        int              `json:"n"`
	Cells    []checkpointCell `json:"cells"`
}

type checkpointCell struct {
	Index  int             `json:"index"`
	Seed   uint64          `json:"seed"`
	Result json.RawMessage `json:"result,omitempty"`
	Ref    string          `json:"ref,omitempty"`
}

// checkpointer accumulates completed-cell results and flushes them to
// disk every `every` new completions (and once more at sweep end). All
// methods are safe for concurrent workers.
type checkpointer struct {
	mu    sync.Mutex
	path  string
	every int
	base  uint64
	n     int
	store CellStore
	cells map[int]cellRecord
	dirty int
}

// cellRecord is one completed cell held in memory: the raw payload
// (always set, so restore never re-reads the store) and, when the
// payload also lives in the store, the ref the snapshot writes in place
// of the inline JSON.
type cellRecord struct {
	raw json.RawMessage
	ref string
}

// newCheckpointer builds the sweep's checkpointer, or nil when the
// config names no checkpoint file. With Resume set it pre-loads every
// matching cell from an existing snapshot; a missing, corrupt, or
// mismatched (different BaseSeed or grid size) file is ignored and the
// sweep starts cold.
func newCheckpointer(cfg *SweepConfig, n int) *checkpointer {
	if cfg.Checkpoint == "" {
		return nil
	}
	ck := &checkpointer{
		path:  cfg.Checkpoint,
		every: cfg.CheckpointEvery,
		base:  cfg.BaseSeed,
		n:     n,
		store: checkpointStore(),
		cells: make(map[int]cellRecord),
	}
	if ck.every <= 0 {
		ck.every = 8
	}
	if cfg.Resume {
		ck.load()
	}
	return ck
}

func (ck *checkpointer) load() {
	data, err := os.ReadFile(ck.path)
	if err != nil {
		return
	}
	var snap sweepCheckpoint
	if json.Unmarshal(data, &snap) != nil {
		return
	}
	if snap.BaseSeed != ck.base || snap.N != ck.n {
		return
	}
	for _, c := range snap.Cells {
		if c.Index < 0 || c.Index >= ck.n {
			continue
		}
		if CellSeed(ck.base, c.Index) != c.Seed {
			continue
		}
		rec := cellRecord{raw: c.Result, ref: c.Ref}
		if len(rec.raw) == 0 {
			// Externalized cell: resolve the ref through the store. A
			// miss (evicted, or invalidated by a source change) just
			// means this cell recomputes.
			if rec.ref == "" || ck.store == nil {
				continue
			}
			payload, ok := ck.store.Get(rec.ref)
			if !ok || len(payload) == 0 {
				continue
			}
			rec.raw = payload
		}
		ck.cells[c.Index] = rec
	}
}

// cellRef is the store key a checkpointed cell's payload lives under:
// the sweep identity (base seed + grid size) plus the cell index. The
// store prefixes every key with its schema version and source hash, so
// refs invalidate in lockstep with cached runs.
func (ck *checkpointer) cellRef(i int) string {
	return fmt.Sprintf("sweepcell|base=%x|n=%d|i=%d", ck.base, ck.n, i)
}

// cached returns the stored raw result for cell i, if any.
func (ck *checkpointer) cached(i int) (json.RawMessage, bool) {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	rec, ok := ck.cells[i]
	return rec.raw, ok
}

// record stores a completed cell. Results that don't marshal (NaN/Inf
// floats, channels, ...) are skipped: those cells simply recompute on
// resume. With a CellStore installed the payload is written there and
// the snapshot keeps only the ref; a store write failure falls back to
// inlining the payload in the snapshot.
func (ck *checkpointer) record(i int, v any) {
	raw, err := json.Marshal(v)
	if err != nil {
		return
	}
	rec := cellRecord{raw: raw}
	if ck.store != nil {
		if ref := ck.cellRef(i); ck.store.Put(ref, raw) == nil {
			rec.ref = ref
		}
	}
	ck.mu.Lock()
	defer ck.mu.Unlock()
	if _, exists := ck.cells[i]; !exists {
		ck.dirty++
	}
	ck.cells[i] = rec
	if ck.dirty >= ck.every {
		ck.flushLocked()
		ck.dirty = 0
	}
}

// flush writes the snapshot unconditionally (called at sweep end).
func (ck *checkpointer) flush() {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	ck.flushLocked()
	ck.dirty = 0
}

// flushLocked serializes the snapshot and writes it atomically
// (temp file + rename) so an interrupted sweep never leaves a torn
// checkpoint behind. Write errors are deliberately swallowed: a failed
// checkpoint must not fail an otherwise healthy sweep.
func (ck *checkpointer) flushLocked() {
	snap := sweepCheckpoint{BaseSeed: ck.base, N: ck.n}
	snap.Cells = make([]checkpointCell, 0, len(ck.cells))
	for i, rec := range ck.cells {
		c := checkpointCell{Index: i, Seed: CellSeed(ck.base, i)}
		if rec.ref != "" {
			c.Ref = rec.ref
		} else {
			c.Result = rec.raw
		}
		snap.Cells = append(snap.Cells, c)
	}
	sort.Slice(snap.Cells, func(a, b int) bool { return snap.Cells[a].Index < snap.Cells[b].Index })
	data, err := json.Marshal(&snap)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(ck.path), ".checkpoint-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), ck.path); err != nil {
		os.Remove(tmp.Name())
	}
}
