package engine

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// sweepCheckpoint is the on-disk snapshot format: the sweep's identity
// (BaseSeed + grid size) and one entry per completed cell. Each cell
// carries its derived seed so a resume against a different derivation —
// or a stale file from another grid — is rejected per cell rather than
// silently replaying wrong results. Results are stored as raw JSON;
// encoding/json renders float64 with the shortest round-trip
// representation, so a restored cell is bit-identical to a recomputed
// one.
type sweepCheckpoint struct {
	BaseSeed uint64           `json:"base_seed"`
	N        int              `json:"n"`
	Cells    []checkpointCell `json:"cells"`
}

type checkpointCell struct {
	Index  int             `json:"index"`
	Seed   uint64          `json:"seed"`
	Result json.RawMessage `json:"result"`
}

// checkpointer accumulates completed-cell results and flushes them to
// disk every `every` new completions (and once more at sweep end). All
// methods are safe for concurrent workers.
type checkpointer struct {
	mu    sync.Mutex
	path  string
	every int
	base  uint64
	n     int
	cells map[int]json.RawMessage
	dirty int
}

// newCheckpointer builds the sweep's checkpointer, or nil when the
// config names no checkpoint file. With Resume set it pre-loads every
// matching cell from an existing snapshot; a missing, corrupt, or
// mismatched (different BaseSeed or grid size) file is ignored and the
// sweep starts cold.
func newCheckpointer(cfg *SweepConfig, n int) *checkpointer {
	if cfg.Checkpoint == "" {
		return nil
	}
	ck := &checkpointer{
		path:  cfg.Checkpoint,
		every: cfg.CheckpointEvery,
		base:  cfg.BaseSeed,
		n:     n,
		cells: make(map[int]json.RawMessage),
	}
	if ck.every <= 0 {
		ck.every = 8
	}
	if cfg.Resume {
		ck.load()
	}
	return ck
}

func (ck *checkpointer) load() {
	data, err := os.ReadFile(ck.path)
	if err != nil {
		return
	}
	var snap sweepCheckpoint
	if json.Unmarshal(data, &snap) != nil {
		return
	}
	if snap.BaseSeed != ck.base || snap.N != ck.n {
		return
	}
	for _, c := range snap.Cells {
		if c.Index < 0 || c.Index >= ck.n || len(c.Result) == 0 {
			continue
		}
		if CellSeed(ck.base, c.Index) != c.Seed {
			continue
		}
		ck.cells[c.Index] = c.Result
	}
}

// cached returns the stored raw result for cell i, if any.
func (ck *checkpointer) cached(i int) (json.RawMessage, bool) {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	raw, ok := ck.cells[i]
	return raw, ok
}

// record stores a completed cell. Results that don't marshal (NaN/Inf
// floats, channels, ...) are skipped: those cells simply recompute on
// resume.
func (ck *checkpointer) record(i int, v any) {
	raw, err := json.Marshal(v)
	if err != nil {
		return
	}
	ck.mu.Lock()
	defer ck.mu.Unlock()
	if _, exists := ck.cells[i]; !exists {
		ck.dirty++
	}
	ck.cells[i] = raw
	if ck.dirty >= ck.every {
		ck.flushLocked()
		ck.dirty = 0
	}
}

// flush writes the snapshot unconditionally (called at sweep end).
func (ck *checkpointer) flush() {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	ck.flushLocked()
	ck.dirty = 0
}

// flushLocked serializes the snapshot and writes it atomically
// (temp file + rename) so an interrupted sweep never leaves a torn
// checkpoint behind. Write errors are deliberately swallowed: a failed
// checkpoint must not fail an otherwise healthy sweep.
func (ck *checkpointer) flushLocked() {
	snap := sweepCheckpoint{BaseSeed: ck.base, N: ck.n}
	snap.Cells = make([]checkpointCell, 0, len(ck.cells))
	for i, raw := range ck.cells {
		snap.Cells = append(snap.Cells, checkpointCell{Index: i, Seed: CellSeed(ck.base, i), Result: raw})
	}
	sort.Slice(snap.Cells, func(a, b int) bool { return snap.Cells[a].Index < snap.Cells[b].Index })
	data, err := json.Marshal(&snap)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(ck.path), ".checkpoint-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), ck.path); err != nil {
		os.Remove(tmp.Name())
	}
}
