package engine

import (
	"context"
	"math"
	"testing"

	"repro/internal/fluid"
	"repro/internal/multilink"
	"repro/internal/obs"
	"repro/internal/packetsim"
	"repro/internal/protocol"
	"repro/internal/trace"
)

func fluidCfg() fluid.Config {
	return fluid.Config{Bandwidth: 1200, PropDelay: 0.05, Buffer: 60}
}

// equalSeries requires bit-identical float series.
func equalSeries(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] && !(math.IsNaN(got[i]) && math.IsNaN(want[i])) {
			t.Fatalf("%s[%d] = %v, want %v", name, i, got[i], want[i])
		}
	}
}

func equalTraces(t *testing.T, got, want *trace.Trace) {
	t.Helper()
	if got.Len() != want.Len() || got.Senders() != want.Senders() {
		t.Fatalf("trace shape (%d steps, %d senders), want (%d, %d)",
			got.Len(), got.Senders(), want.Len(), want.Senders())
	}
	if got.Capacity() != want.Capacity() || got.BaseRTT() != want.BaseRTT() {
		t.Fatalf("trace link (C=%v, base=%v), want (C=%v, base=%v)",
			got.Capacity(), got.BaseRTT(), want.Capacity(), want.BaseRTT())
	}
	for i := 0; i < want.Senders(); i++ {
		equalSeries(t, "window", got.Window(i), want.Window(i))
	}
	equalSeries(t, "rtt", got.RTT(), want.RTT())
	equalSeries(t, "loss", got.Loss(), want.Loss())
	equalSeries(t, "total", got.Total(), want.Total())
}

// TestFluidGolden: engine.Run over the fluid adapter is bit-identical to
// calling internal/fluid directly.
func TestFluidGolden(t *testing.T) {
	const steps = 800
	cfg := fluidCfg()
	want, err := fluid.Homogeneous(cfg, protocol.Reno(), 3, nil, steps)
	if err != nil {
		t.Fatal(err)
	}
	senders, err := fluid.HomogeneousSenders(protocol.Reno(), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), Spec{
		Substrate: &FluidSpec{Cfg: cfg, Senders: senders, Steps: steps},
		Record:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != steps {
		t.Fatalf("Steps = %d, want %d", res.Steps, steps)
	}
	equalTraces(t, res.Trace, want)
}

// TestFluidObserversSeeTrace: streamed steps carry exactly the values the
// trace records, in order.
func TestFluidObserversSeeTrace(t *testing.T) {
	const steps = 400
	cfg := fluidCfg()
	senders, err := fluid.HomogeneousSenders(protocol.NewAIMD(1, 0.7), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	var idx int
	var totals, rtts, losses []float64
	obs := ObserverFunc(func(s Step) {
		if s.Index != idx {
			t.Fatalf("step index %d, want %d", s.Index, idx)
		}
		idx++
		totals = append(totals, s.Total)
		rtts = append(rtts, s.RTT)
		losses = append(losses, s.Loss)
		sum := 0.0
		for _, w := range s.Windows {
			sum += w
		}
		if sum != s.Total {
			t.Fatalf("Total %v != window sum %v", s.Total, sum)
		}
	})
	res, err := Run(context.Background(), Spec{
		Substrate: &FluidSpec{Cfg: cfg, Senders: senders, Steps: steps},
		Record:    true,
		Observers: []Observer{obs},
	})
	if err != nil {
		t.Fatal(err)
	}
	equalSeries(t, "total", totals, res.Trace.Total())
	equalSeries(t, "rtt", rtts, res.Trace.RTT())
	equalSeries(t, "loss", losses, res.Trace.Loss())
}

// TestPacketGolden: the packet adapter with Record reproduces
// packetsim.Run exactly, including delivery counters.
func TestPacketGolden(t *testing.T) {
	cfg := packetsim.Config{Bandwidth: 500, PropDelay: 0.02, Buffer: 25, Seed: 7, RandomLoss: 0.001}
	flows := func() []packetsim.Flow {
		return []packetsim.Flow{
			{Proto: protocol.Reno()},
			{Proto: protocol.NewAIMD(2, 0.5), Start: 1.5},
		}
	}
	want, err := packetsim.Run(cfg, flows(), 20)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), Spec{
		Substrate: &PacketSpec{Cfg: cfg, Flows: flows(), Duration: 20},
		Record:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	equalTraces(t, res.Packet.Trace, want.Trace)
	for i := range want.Delivered {
		if res.Packet.Delivered[i] != want.Delivered[i] {
			t.Fatalf("Delivered[%d] = %d, want %d", i, res.Packet.Delivered[i], want.Delivered[i])
		}
		equalSeries(t, "delivered series", res.Packet.DeliveredSeries[i], want.DeliveredSeries[i])
	}
}

// TestPacketNoRecordSkipsTrace: without Record the packet result carries
// no trace but identical delivery counters.
func TestPacketNoRecordSkipsTrace(t *testing.T) {
	cfg := packetsim.Config{Bandwidth: 500, PropDelay: 0.02, Buffer: 25}
	want, err := packetsim.Run(cfg, []packetsim.Flow{{Proto: protocol.Reno()}}, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), Spec{
		Substrate: &PacketSpec{Cfg: cfg, Flows: []packetsim.Flow{{Proto: protocol.Reno()}}, Duration: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil || res.Packet.Trace != nil {
		t.Fatal("trace materialized despite Record=false")
	}
	if res.Packet.Delivered[0] != want.Delivered[0] {
		t.Fatalf("Delivered = %d, want %d", res.Packet.Delivered[0], want.Delivered[0])
	}
	if got, want := res.Packet.Throughput(0, 0.75), want.Throughput(0, 0.75); got != want {
		t.Fatalf("Throughput = %v, want %v", got, want)
	}
}

func parkingLotSpecs(k int) ([]multilink.LinkSpec, []multilink.FlowSpec) {
	link := multilink.LinkSpec{Bandwidth: 1000, PropDelay: 0.02, Buffer: 25}
	links := make([]multilink.LinkSpec, k)
	path := make([]int, k)
	for i := range links {
		links[i] = link
		path[i] = i
	}
	flows := []multilink.FlowSpec{{Proto: protocol.Reno(), Init: 2, Path: path}}
	for i := 0; i < k; i++ {
		flows = append(flows, multilink.FlowSpec{Proto: protocol.Reno(), Init: 2, Path: []int{i}})
	}
	return links, flows
}

// TestMultilinkGolden: the multilink adapter with Record reproduces
// Network.Run exactly.
func TestMultilinkGolden(t *testing.T) {
	const steps = 600
	links, flows := parkingLotSpecs(3)
	n, err := multilink.New(links, flows, multilink.WithStochasticLoss(11))
	if err != nil {
		t.Fatal(err)
	}
	want := n.Run(steps)

	res, err := Run(context.Background(), Spec{
		Substrate: &NetSpec{Links: links, Flows: flows, Opts: []multilink.Option{multilink.WithStochasticLoss(11)}, Steps: steps},
		Record:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Net
	if got.Steps != want.Steps {
		t.Fatalf("Steps = %d, want %d", got.Steps, want.Steps)
	}
	for f := range want.Windows {
		equalSeries(t, "windows", got.Windows[f], want.Windows[f])
		equalSeries(t, "flow loss", got.FlowLoss[f], want.FlowLoss[f])
		equalSeries(t, "flow rtt", got.FlowRTT[f], want.FlowRTT[f])
	}
	for l := range want.LinkLoss {
		equalSeries(t, "link loss", got.LinkLoss[l], want.LinkLoss[l])
		equalSeries(t, "link load", got.LinkLoad[l], want.LinkLoad[l])
	}
	for f := range want.Windows {
		if got.AvgGoodput(f, 0.75) != want.AvgGoodput(f, 0.75) {
			t.Fatalf("AvgGoodput(%d) mismatch", f)
		}
	}
	for l := range want.LinkLoss {
		if got.LinkUtilization(l, 0.75) != want.LinkUtilization(l, 0.75) {
			t.Fatalf("LinkUtilization(%d) mismatch", l)
		}
	}
}

// TestMultilinkObserver: observers receive the network step stream with
// Net populated, even without Record.
func TestMultilinkObserver(t *testing.T) {
	const steps = 100
	links, flows := parkingLotSpecs(2)
	var seen int
	var lastLoad float64
	obs := ObserverFunc(func(s Step) {
		if s.Net == nil {
			t.Fatal("multilink step without Net")
		}
		if len(s.Net.LinkLoad) != len(links) {
			t.Fatalf("LinkLoad has %d entries, want %d", len(s.Net.LinkLoad), len(links))
		}
		lastLoad = s.Net.LinkLoad[0]
		seen++
	})
	res, err := Run(context.Background(), Spec{
		Substrate: &NetSpec{Links: links, Flows: flows, Steps: steps},
		Observers: []Observer{obs},
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != steps {
		t.Fatalf("observed %d steps, want %d", seen, steps)
	}
	if res.Net != nil {
		t.Fatal("Net result materialized despite Record=false")
	}
	if lastLoad <= 0 {
		t.Fatalf("final link load %v, want > 0", lastLoad)
	}
}

// TestRunCancellation: a canceled context aborts all three substrates.
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	senders, err := fluid.HomogeneousSenders(protocol.Reno(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	specs := []Spec{
		{Substrate: &FluidSpec{Cfg: fluidCfg(), Senders: senders, Steps: 100000}},
		{Substrate: &PacketSpec{Cfg: packetsim.Config{Bandwidth: 500, PropDelay: 0.02, Buffer: 25}, Flows: []packetsim.Flow{{Proto: protocol.Reno()}}, Duration: 10000}},
	}
	nl, nf := parkingLotSpecs(2)
	specs = append(specs, Spec{Substrate: &NetSpec{Links: nl, Flows: nf, Steps: 1 << 20}})
	for i, spec := range specs {
		if _, err := Run(ctx, spec); err != context.Canceled {
			t.Fatalf("spec %d: err = %v, want context.Canceled", i, err)
		}
	}
}

// TestMeta sanity-checks the substrate descriptions observers size from.
func TestMeta(t *testing.T) {
	cfg := fluidCfg()
	senders, _ := fluid.HomogeneousSenders(protocol.Reno(), 2, nil)
	m := (&FluidSpec{Cfg: cfg, Senders: senders, Steps: 500}).Meta()
	if m.Flows != 2 || m.Horizon != 500 || m.Capacity != cfg.Capacity() || m.BaseRTT != cfg.BaseRTT() {
		t.Fatalf("fluid meta = %+v", m)
	}
	pm := (&PacketSpec{Cfg: packetsim.Config{Bandwidth: 500, PropDelay: 0.02}, Flows: []packetsim.Flow{{Proto: protocol.Reno()}}, Duration: 10}).Meta()
	if pm.Flows != 1 || pm.Horizon != int(10/0.04)+1 {
		t.Fatalf("packet meta = %+v", pm)
	}
	nl, nf := parkingLotSpecs(2)
	nm := (&NetSpec{Links: nl, Flows: nf, Steps: 77}).Meta()
	if nm.Flows != 3 || nm.Horizon != 77 {
		t.Fatalf("net meta = %+v", nm)
	}
}

// TestRunTelemetry: with obs enabled, Run records per-kind run counts,
// step totals and a wall-time histogram; disabled, it records nothing.
func TestRunTelemetry(t *testing.T) {
	obs.Disable()
	obs.Reset()
	run := func() {
		s, err := fluid.HomogeneousSenders(protocol.Reno(), 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(context.Background(), Spec{
			Substrate: &FluidSpec{Cfg: fluidCfg(), Senders: s, Steps: 200},
		}); err != nil {
			t.Fatal(err)
		}
	}
	run()
	if s := obs.TakeSnapshot(); len(s.Counters)+len(s.Histograms) != 0 {
		t.Fatalf("disabled Run recorded metrics: %+v", s)
	}

	obs.Enable()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	run()
	s := obs.TakeSnapshot()
	if s.Counters["engine.runs.fluid"] != 1 {
		t.Fatalf("fluid runs = %d, want 1", s.Counters["engine.runs.fluid"])
	}
	if s.Counters["engine.steps.fluid"] != 200 {
		t.Fatalf("fluid steps = %d, want 200", s.Counters["engine.steps.fluid"])
	}
	if s.Histograms["engine.run.duration.fluid"].Count != 1 {
		t.Fatalf("duration histogram = %+v", s.Histograms["engine.run.duration.fluid"])
	}
}
