package engine

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// TestSweepDeterministic: results (including per-cell seeds) are identical
// at any worker count.
func TestSweepDeterministic(t *testing.T) {
	const n = 64
	run := func(workers int) []uint64 {
		out, err := Sweep(context.Background(), n, SweepConfig{Workers: workers, BaseSeed: 42},
			func(_ context.Context, i int, seed uint64) (uint64, error) {
				return seed ^ uint64(i)<<32, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	for _, w := range []int{0, 2, 7} {
		got := run(w)
		for i := range got {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: cell %d = %x, want %x", w, i, got[i], serial[i])
			}
		}
	}
}

// TestCellSeedSeparation: neighboring cells and bases get distinct seeds.
func TestCellSeedSeparation(t *testing.T) {
	seen := make(map[uint64]bool)
	for base := uint64(0); base < 4; base++ {
		for i := 0; i < 256; i++ {
			s := CellSeed(base, i)
			if seen[s] {
				t.Fatalf("seed collision at base=%d i=%d", base, i)
			}
			seen[s] = true
		}
	}
	if CellSeed(1, 5) != CellSeed(1, 5) {
		t.Fatal("CellSeed is not deterministic")
	}
}

// TestSweepFailFast: an erroring cell aborts the sweep with its error.
func TestSweepFailFast(t *testing.T) {
	boom := errors.New("boom")
	_, err := Sweep(context.Background(), 100, SweepConfig{Workers: 4},
		func(_ context.Context, i int, _ uint64) (int, error) {
			if i == 5 {
				return 0, boom
			}
			return i, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
}

// TestSweepCancellation: canceling the context stops the sweep.
func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	_, err := Sweep(ctx, 1000, SweepConfig{Workers: 2},
		func(ctx context.Context, i int, _ uint64) (int, error) {
			if ran.Add(1) == 10 {
				cancel()
			}
			return i, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if total := ran.Load(); total >= 1000 {
		t.Fatalf("all %d cells ran despite cancellation", total)
	}
}

// TestSweepProgress: the callback sees done increment 1..n with a stable
// total, serialized.
func TestSweepProgress(t *testing.T) {
	const n = 40
	var calls []int
	_, err := Sweep(context.Background(), n, SweepConfig{
		Workers:  4,
		Progress: func(done, total int) { calls = append(calls, done*1000+total) },
	}, func(_ context.Context, i int, _ uint64) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != n {
		t.Fatalf("%d progress calls, want %d", len(calls), n)
	}
	for i, c := range calls {
		if c != (i+1)*1000+n {
			t.Fatalf("call %d = done %d/total %d, want %d/%d", i, c/1000, c%1000, i+1, n)
		}
	}
}

// TestSweepOrder: results land at their input index regardless of
// completion order.
func TestSweepOrder(t *testing.T) {
	out, err := Sweep(context.Background(), 32, SweepConfig{Workers: 8},
		func(_ context.Context, i int, _ uint64) (string, error) {
			return fmt.Sprintf("cell-%d", i), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != fmt.Sprintf("cell-%d", i) {
			t.Fatalf("out[%d] = %q", i, v)
		}
	}
}
