package engine

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

// TestSweepDeterministic: results (including per-cell seeds) are identical
// at any worker count.
func TestSweepDeterministic(t *testing.T) {
	const n = 64
	run := func(workers int) []uint64 {
		out, err := Sweep(context.Background(), n, SweepConfig{Workers: workers, BaseSeed: 42},
			func(_ context.Context, i int, seed uint64) (uint64, error) {
				return seed ^ uint64(i)<<32, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	for _, w := range []int{0, 2, 7} {
		got := run(w)
		for i := range got {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: cell %d = %x, want %x", w, i, got[i], serial[i])
			}
		}
	}
}

// TestCellSeedSeparation: neighboring cells and bases get distinct seeds.
func TestCellSeedSeparation(t *testing.T) {
	seen := make(map[uint64]bool)
	for base := uint64(0); base < 4; base++ {
		for i := 0; i < 256; i++ {
			s := CellSeed(base, i)
			if seen[s] {
				t.Fatalf("seed collision at base=%d i=%d", base, i)
			}
			seen[s] = true
		}
	}
	if CellSeed(1, 5) != CellSeed(1, 5) {
		t.Fatal("CellSeed is not deterministic")
	}
}

// TestSweepFailFast: an erroring cell aborts the sweep with its error.
func TestSweepFailFast(t *testing.T) {
	boom := errors.New("boom")
	_, err := Sweep(context.Background(), 100, SweepConfig{Workers: 4},
		func(_ context.Context, i int, _ uint64) (int, error) {
			if i == 5 {
				return 0, boom
			}
			return i, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
}

// TestSweepCancellation: canceling the context stops the sweep.
func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	_, err := Sweep(ctx, 1000, SweepConfig{Workers: 2},
		func(ctx context.Context, i int, _ uint64) (int, error) {
			if ran.Add(1) == 10 {
				cancel()
			}
			return i, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if total := ran.Load(); total >= 1000 {
		t.Fatalf("all %d cells ran despite cancellation", total)
	}
}

// TestSweepProgress: the callback sees done increment 1..n with a stable
// total, serialized.
func TestSweepProgress(t *testing.T) {
	const n = 40
	var calls []int
	_, err := Sweep(context.Background(), n, SweepConfig{
		Workers:  4,
		Progress: func(done, total int) { calls = append(calls, done*1000+total) },
	}, func(_ context.Context, i int, _ uint64) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != n {
		t.Fatalf("%d progress calls, want %d", len(calls), n)
	}
	for i, c := range calls {
		if c != (i+1)*1000+n {
			t.Fatalf("call %d = done %d/total %d, want %d/%d", i, c/1000, c%1000, i+1, n)
		}
	}
}

// TestSweepProgressCountsFailedCells: a cell that returns an error still
// counts as a completion — regression test for the undercount where
// cfg.Progress was skipped on error, so failing grids reported done <
// cells actually executed.
func TestSweepProgressCountsFailedCells(t *testing.T) {
	boom := errors.New("boom")
	var calls []int
	_, err := Sweep(context.Background(), 10, SweepConfig{
		Workers:  1, // serial: exactly cells 0..3 run, 3 fails, 4.. never start
		Progress: func(done, total int) { calls = append(calls, done) },
	}, func(_ context.Context, i int, _ uint64) (int, error) {
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if len(calls) != 4 {
		t.Fatalf("progress calls = %v, want the failing cell counted (4 calls)", calls)
	}
	for i, done := range calls {
		if done != i+1 {
			t.Fatalf("call %d reported done=%d, want %d", i, done, i+1)
		}
	}
}

// TestCellSeedNoCollisions1e5: the SplitMix64 derivation yields no
// duplicate seeds across a 100 000-cell grid, for several bases at once
// (within one base this is guaranteed — base + φ·(i+1) and the finalizer
// are both bijections — so a duplicate means the implementation broke).
func TestCellSeedNoCollisions1e5(t *testing.T) {
	const cells = 100_000
	bases := []uint64{0, 1, 42, 1 << 63}
	seen := make(map[uint64]struct{}, cells*len(bases))
	for _, base := range bases {
		for i := 0; i < cells; i++ {
			s := CellSeed(base, i)
			if _, dup := seen[s]; dup {
				t.Fatalf("duplicate seed %#x at base=%d i=%d", s, base, i)
			}
			seen[s] = struct{}{}
		}
	}
}

// TestSweepTelemetry: with obs enabled, a sweep records per-cell latency
// and completion/failure counters; disabled, it records nothing.
func TestSweepTelemetry(t *testing.T) {
	obs.Disable()
	obs.Reset()
	run := func(n, failAt int) {
		Sweep(context.Background(), n, SweepConfig{Workers: 2},
			func(_ context.Context, i int, _ uint64) (int, error) {
				if i == failAt {
					return 0, errors.New("boom")
				}
				return i, nil
			})
	}
	run(8, -1)
	if s := obs.TakeSnapshot(); len(s.Counters)+len(s.Histograms) != 0 {
		t.Fatalf("disabled sweep recorded metrics: %+v", s)
	}

	obs.Enable()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	run(8, -1)
	run(4, 0)
	s := obs.TakeSnapshot()
	if got := s.Counters["engine.sweep.cells.completed"]; got < 8 {
		t.Fatalf("completed = %d, want ≥ 8", got)
	}
	if got := s.Counters["engine.sweep.cells.failed"]; got < 1 {
		t.Fatalf("failed = %d, want ≥ 1", got)
	}
	if got := s.Counters["engine.sweep.grids"]; got != 2 {
		t.Fatalf("grids = %d, want 2", got)
	}
	h := s.Histograms["engine.sweep.cell.duration"]
	if h.Count < 9 {
		t.Fatalf("cell latency histogram count = %d, want ≥ 9", h.Count)
	}
	if got := s.Counters["parallel.items.ok"]; got < 8 {
		t.Fatalf("parallel ok items = %d, want ≥ 8", got)
	}
	util, ok := s.Gauges["parallel.worker.utilization"]
	if !ok || util <= 0 || util > 1 {
		t.Fatalf("worker utilization = %v (present=%v), want in (0,1]", util, ok)
	}
}

// TestSweepGlobalProgressSink: the obs-installed sink (the -progress
// flag) is chained in front of cfg.Progress.
func TestSweepGlobalProgressSink(t *testing.T) {
	var sink, local atomic.Int64
	obs.SetSweepProgress(func(done, total int) { sink.Add(1) })
	defer obs.SetSweepProgress(nil)
	_, err := Sweep(context.Background(), 6, SweepConfig{
		Workers:  2,
		Progress: func(done, total int) { local.Add(1) },
	}, func(_ context.Context, i int, _ uint64) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if sink.Load() != 6 || local.Load() != 6 {
		t.Fatalf("sink saw %d, local saw %d, want 6 each", sink.Load(), local.Load())
	}
}

// TestSweepOrder: results land at their input index regardless of
// completion order.
func TestSweepOrder(t *testing.T) {
	out, err := Sweep(context.Background(), 32, SweepConfig{Workers: 8},
		func(_ context.Context, i int, _ uint64) (string, error) {
			return fmt.Sprintf("cell-%d", i), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != fmt.Sprintf("cell-%d", i) {
			t.Fatalf("out[%d] = %q", i, v)
		}
	}
}
