package engine

import (
	"context"

	"repro/internal/chaos"
	"repro/internal/fluid"
	"repro/internal/multilink"
	"repro/internal/nettopo"
	"repro/internal/packetsim"
	"repro/internal/trace"
)

// compileChaos builds the spec's injector for a substrate shape, or nil
// when the spec carries no schedule.
func compileChaos(spec *Spec, flows, links int) (*chaos.Injector, error) {
	if spec.Chaos == nil {
		return nil, nil
	}
	return spec.Chaos.Compile(spec.ChaosSeed, flows, links)
}

// FluidSpec runs the §2 fluid-flow link for Steps synchronized steps.
// With Record set, the resulting trace is bit-identical to
// fluid.New(Cfg, Senders...).Run(Steps).
type FluidSpec struct {
	Cfg     fluid.Config
	Senders []fluid.Sender
	Steps   int
}

// Meta implements Substrate.
func (s *FluidSpec) Meta() Meta {
	return Meta{
		Flows:    len(s.Senders),
		Capacity: s.Cfg.Capacity(),
		BaseRTT:  s.Cfg.BaseRTT(),
		Horizon:  s.Steps,
	}
}

func (s *FluidSpec) run(ctx context.Context, spec Spec) (*Result, error) {
	cfg := s.Cfg
	inj, err := compileChaos(&spec, len(s.Senders), 1)
	if err != nil {
		return nil, err
	}
	if inj != nil {
		cfg.Perturb = inj
	}
	l, err := fluid.New(cfg, s.Senders...)
	if err != nil {
		return nil, err
	}
	var tr *trace.Trace
	if spec.Record {
		cfg := l.Config()
		tr = trace.New(len(s.Senders), cfg.Capacity(), cfg.BaseRTT(), s.Steps)
	}
	observe := len(spec.Observers) > 0
	for i := 0; i < s.Steps; i++ {
		if i&0xff == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		res := l.Step()
		if err := l.Err(); err != nil {
			return nil, err
		}
		if tr != nil {
			tr.Append(res.Windows, res.RTT, res.CongLoss)
		}
		if observe {
			total := 0.0
			for _, w := range res.Windows {
				total += w
			}
			emit(&spec, Step{Index: res.Step, Windows: res.Windows, Total: total, RTT: res.RTT, Loss: res.CongLoss})
		}
	}
	return &Result{Trace: tr, Steps: s.Steps}, nil
}

// PacketSpec runs the packet-level testbed for Duration seconds. Without
// Record the per-tick trace is skipped entirely (Result.Packet.Trace is
// nil); delivery counters are always recorded, so Result.Packet.Throughput
// works either way.
type PacketSpec struct {
	Cfg      packetsim.Config
	Flows    []packetsim.Flow
	Duration float64
}

// Meta implements Substrate. Horizon is the expected tick count, a ±1
// hint — observers sizing tail buffers should add slack.
func (s *PacketSpec) Meta() Meta {
	return Meta{
		Flows:    len(s.Flows),
		Capacity: s.Cfg.Capacity(),
		BaseRTT:  2 * s.Cfg.PropDelay,
		Horizon:  int(s.Duration/s.Cfg.SampleTick()) + 1,
	}
}

func (s *PacketSpec) run(ctx context.Context, spec Spec) (*Result, error) {
	cfg := s.Cfg
	if !spec.Record {
		cfg.DisableTrace = true
	}
	inj, err := compileChaos(&spec, len(s.Flows), 1)
	if err != nil {
		return nil, err
	}
	if inj != nil {
		cfg.Perturb = inj
	}
	var obs func(packetsim.TickSample)
	if len(spec.Observers) > 0 {
		obs = func(t packetsim.TickSample) {
			total := 0.0
			for _, w := range t.Windows {
				total += w
			}
			emit(&spec, Step{Index: t.Index, Windows: t.Windows, Total: total, RTT: t.RTT, Loss: t.Loss})
		}
	}
	res, err := packetsim.RunObserved(ctx, cfg, s.Flows, s.Duration, obs)
	if err != nil {
		return nil, err
	}
	steps := 0
	if len(res.DeliveredSeries) > 0 {
		steps = len(res.DeliveredSeries[0])
	}
	return &Result{Trace: res.Trace, Packet: res, Steps: steps}, nil
}

// NetSpec runs the §6 multilink network for Steps synchronized steps.
// With Record set, the Result.Net is identical to
// multilink.New(Links, Flows, Opts...).Run(Steps). Observers receive the
// full *multilink.StepResult via Step.Net.
type NetSpec struct {
	Links []multilink.LinkSpec
	Flows []multilink.FlowSpec
	Opts  []multilink.Option
	Steps int
}

// Meta implements Substrate. Capacity and BaseRTT are zero: a network has
// no single bottleneck; observers needing them consult Step.Net per link.
func (s *NetSpec) Meta() Meta {
	return Meta{Flows: len(s.Flows), Horizon: s.Steps}
}

func (s *NetSpec) run(ctx context.Context, spec Spec) (*Result, error) {
	opts := s.Opts
	inj, err := compileChaos(&spec, len(s.Flows), len(s.Links))
	if err != nil {
		return nil, err
	}
	if inj != nil {
		opts = append(append([]multilink.Option(nil), s.Opts...), multilink.WithPerturber(inj))
	}
	n, err := multilink.New(s.Links, s.Flows, opts...)
	if err != nil {
		return nil, err
	}
	var obs func(*multilink.StepResult)
	if len(spec.Observers) > 0 {
		obs = func(res *multilink.StepResult) {
			total := 0.0
			for _, w := range res.Windows {
				total += w
			}
			emit(&spec, Step{Index: res.Step, Windows: res.Windows, Total: total, Net: res})
		}
	}
	res, err := n.RunObserved(ctx, s.Steps, spec.Record, obs)
	if err != nil {
		return nil, err
	}
	return &Result{Net: res, Steps: s.Steps}, nil
}

// TopoSpec runs a conservation-law network over an arbitrary DAG
// topology (internal/nettopo) for Steps synchronized steps. With Record
// set, Result.Topo is identical to nettopo.New(Links, Flows,
// Opts...).Run(Steps). Observers receive the full *nettopo.StepResult
// via Step.Topo.
type TopoSpec struct {
	Links []nettopo.LinkSpec
	Flows []nettopo.FlowSpec
	Opts  []nettopo.Option
	Steps int
}

// Meta implements Substrate. Capacity and BaseRTT are zero: a network
// has no single bottleneck; observers needing them consult Step.Topo per
// link (metrics.TopoStream attributes each flow to its own bottleneck).
func (s *TopoSpec) Meta() Meta {
	return Meta{Flows: len(s.Flows), Horizon: s.Steps}
}

func (s *TopoSpec) run(ctx context.Context, spec Spec) (*Result, error) {
	opts := s.Opts
	inj, err := compileChaos(&spec, len(s.Flows), len(s.Links))
	if err != nil {
		return nil, err
	}
	if inj != nil {
		opts = append(append([]nettopo.Option(nil), s.Opts...), nettopo.WithPerturber(inj))
	}
	n, err := nettopo.New(s.Links, s.Flows, opts...)
	if err != nil {
		return nil, err
	}
	var obs func(*nettopo.StepResult)
	if len(spec.Observers) > 0 {
		obs = func(res *nettopo.StepResult) {
			total := 0.0
			for _, w := range res.Windows {
				total += w
			}
			emit(&spec, Step{Index: res.Step, Windows: res.Windows, Total: total, Topo: res})
		}
	}
	res, err := n.RunObserved(ctx, s.Steps, spec.Record, obs)
	if err != nil {
		return nil, err
	}
	return &Result{Topo: res, Steps: s.Steps}, nil
}
