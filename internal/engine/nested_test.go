package engine

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

func TestInSweepCell(t *testing.T) {
	if InSweepCell(context.Background()) {
		t.Fatal("background context must not look like a sweep cell")
	}
	_, err := Sweep(context.Background(), 1, SweepConfig{},
		func(ctx context.Context, i int, _ uint64) (bool, error) {
			return InSweepCell(ctx), nil
		})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNestedSweepDefaultsSerial verifies the oversubscription guard: a
// sweep launched from inside another sweep's cell with Workers unset runs
// its cells serially, while an explicit Workers value is honored.
func TestNestedSweepDefaultsSerial(t *testing.T) {
	maxConcurrent := func(workers int) int32 {
		var cur, max int32
		_, err := Sweep(context.Background(), 2, SweepConfig{Workers: 2},
			func(ctx context.Context, _ int, _ uint64) (int, error) {
				_, err := Sweep(ctx, 8, SweepConfig{Workers: workers},
					func(ctx context.Context, _ int, _ uint64) (int, error) {
						c := atomic.AddInt32(&cur, 1)
						for {
							m := atomic.LoadInt32(&max)
							if c <= m || atomic.CompareAndSwapInt32(&max, m, c) {
								break
							}
						}
						time.Sleep(2 * time.Millisecond)
						atomic.AddInt32(&cur, -1)
						return 0, nil
					})
				return 0, err
			})
		if err != nil {
			t.Fatal(err)
		}
		return atomic.LoadInt32(&max)
	}
	// Workers unset inside a cell: each inner sweep stays serial, so at
	// most the 2 outer cells run inner work concurrently.
	if m := maxConcurrent(0); m > 2 {
		t.Fatalf("nested sweep with unset Workers reached concurrency %d, want ≤ 2 (serial per cell)", m)
	}
	// An explicit inner Workers overrides the guard.
	if m := maxConcurrent(4); m <= 2 {
		t.Fatalf("explicit inner Workers=4 was capped: max concurrency %d", m)
	}
}
