package engine

import (
	"context"
	"strconv"

	"repro/internal/chaos"
	"repro/internal/fluid"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/trace"
)

// This file implements the grid-batch path through the sweep engine:
// SweepSpecs groups compatible fluid cells of a spec grid and advances
// each group in lockstep through a fluid.Batch (structure-of-arrays
// stepping with closed-form protocol kernels), while every other cell —
// non-fluid substrates, non-kernel protocols, unsynchronized senders,
// checkpoint-restored cells — takes the ordinary per-cell engine.Run
// path. Batched and per-cell results are bit-identical by construction
// (see internal/fluid/batch.go), so callers cannot observe which path a
// cell took except through the engine.sweep.cells.batched / .fallback
// counters and wall-clock time.

// minBatchGroup is the smallest group worth batching: a singleton gains
// nothing over per-cell stepping, so it falls back (and counts as
// fallback in the telemetry).
const minBatchGroup = 2

// emitStrip is how many lockstep steps of observer data each batched
// cell buffers before flushing them to its observers in one consecutive
// run (see runBatchGroup).
const emitStrip = 64

// Strip is a contiguous run of steps from one cell, handed to
// StripObserver implementations by the batch path. Windows is flow-major
// (Count×Flows values transposed relative to Step.Windows): flow i's
// samples occupy the contiguous column Windows[i*Count : (i+1)*Count],
// with element k of a column belonging to step Start+k. The layout lets
// per-flow consumers bulk-copy a whole column without a gather. Like
// Step.Windows, the backing slices are reused and only valid during the
// ObserveStrip call.
type Strip struct {
	Start   int // index of the first step in the strip
	Count   int // steps in the strip
	Flows   int // number of Windows columns
	Windows []float64
	Totals  []float64
	RTT     []float64
	Loss    []float64
}

// StripObserver is an optional Observer upgrade. The grid-batch path
// buffers runs of consecutive steps per cell and hands whole strips to
// observers that implement it, amortizing the per-step dispatch and
// Step-struct copy; everyone else receives the same steps one Observe at
// a time. Implementations must be indistinguishable from observing the
// equivalent Steps in order — the upgrade is a fast path, never a
// semantic one.
type StripObserver interface {
	Observer
	ObserveStrip(Strip)
}

// Batch-path telemetry, recorded only while obs is enabled. A cell counts
// as batched when a fluid.Batch stepped it, and as fallback when it is a
// fluid-substrate cell that took the per-cell path instead (no kernel,
// unsynchronized feedback, singleton group, -nobatch, ...). Non-fluid
// cells count as neither. Checkpoint-restored cells execute nothing and
// also count as neither (they land in engine.sweep.cells.restored).
var (
	sweepCellsBatched  = obs.GetCounter("engine.sweep.cells.batched")
	sweepCellsFallback = obs.GetCounter("engine.sweep.cells.fallback")
)

// batchOut is the precomputed outcome of a batched cell, returned by the
// sweep cell function instead of calling Run.
type batchOut struct {
	res *Result
	err error
}

// SweepSpecs runs one engine Spec per grid cell across the sweep
// orchestrator, returning results in input order. It is Sweep
// specialized to spec grids, plus the grid-batch fast path: compatible
// cells are grouped and stepped in lockstep before the per-cell pass,
// which then serves their precomputed results. All Sweep semantics are
// preserved — fail-fast on the first cell error, deterministic results
// at any worker count, hardening (timeouts, retries, checkpoint/resume)
// via cfg, and obs instrumentation.
//
// Specs must be self-describing: cell seeds come from each spec's
// Cfg.Seed / ChaosSeed fields, not from CellSeed derivation (the per-cell
// seed Sweep hands its cell function is ignored). Like Run, substrates
// are single-use — build fresh specs per call.
//
// Two caveats apply to batched cells, both documented in DESIGN.md: a
// CellTimeout does not bound them (the group computes before the
// per-cell attempt loop; context cancellation still stops the group
// promptly), and engine.run.duration telemetry is not recorded for them
// (a lockstep group has no per-cell wall time).
func SweepSpecs(ctx context.Context, specs []Spec, cfg SweepConfig) ([]*Result, error) {
	capNestedWorkers(ctx, &cfg)
	applyHardening(&cfg)
	routeWorkers(len(specs), &cfg)
	ctx, sp := obs.StartSpan(ctx, "engine.sweep.specs")
	sp.SetDetail(strconv.Itoa(len(specs)) + " specs")
	defer sp.End()
	pre := runBatches(ctx, specs, &cfg)
	return Sweep(ctx, len(specs), cfg, func(ctx context.Context, i int, _ uint64) (*Result, error) {
		if pre != nil && pre[i] != nil {
			return pre[i].res, pre[i].err
		}
		return Run(ctx, specs[i])
	})
}

// batchKey identifies a group of lockstep-compatible cells: same step
// count, and — when a chaos schedule is present — the same schedule
// value, seed, and flow count, so one compiled injector serves the whole
// group (the injector's per-step state advances once per step no matter
// how many cells query it, which is what makes sharing bit-identical to
// per-cell compilation).
type batchKey struct {
	steps     int
	chaos     *chaos.Schedule
	chaosSeed uint64
	flows     int
}

// batchKeyFor classifies one spec: the group key and true when the cell
// can be batched, false when it must take the per-cell path.
func batchKeyFor(spec *Spec) (batchKey, bool) {
	fs, ok := spec.Substrate.(*FluidSpec)
	if !ok {
		return batchKey{}, false
	}
	if fs.Steps <= 0 || fs.Cfg.Perturb != nil {
		return batchKey{}, false
	}
	if fluid.Batchable(fs.Cfg, fs.Senders) != nil {
		return batchKey{}, false
	}
	k := batchKey{steps: fs.Steps}
	if spec.Chaos != nil {
		k.chaos = spec.Chaos
		k.chaosSeed = spec.ChaosSeed
		k.flows = len(fs.Senders)
	}
	return k, true
}

// runBatches plans and executes the batch groups, returning per-cell
// precomputed outcomes (nil entries mean "run per-cell"). Groups run
// concurrently under cfg.Workers; context cancellation aborts cleanly,
// leaving unfinished cells to the per-cell pass (which observes the
// cancellation itself).
func runBatches(ctx context.Context, specs []Spec, cfg *SweepConfig) []*batchOut {
	instrumented := obs.Enabled()
	fluidCells := 0
	if instrumented {
		for i := range specs {
			if _, ok := specs[i].Substrate.(*FluidSpec); ok {
				fluidCells++
			}
		}
	}
	if cfg.NoBatch || len(specs) < minBatchGroup {
		if instrumented {
			sweepCellsFallback.Add(uint64(fluidCells))
		}
		return nil
	}

	restored := restoredCells(cfg, len(specs))
	groups := make(map[batchKey][]int)
	for i := range specs {
		if restored[i] {
			if instrumented {
				if _, ok := specs[i].Substrate.(*FluidSpec); ok {
					fluidCells--
				}
			}
			continue
		}
		if key, ok := batchKeyFor(&specs[i]); ok {
			groups[key] = append(groups[key], i)
		}
	}
	var runs [][]int
	batched := 0
	for _, idxs := range groups {
		if len(idxs) >= minBatchGroup {
			runs = append(runs, idxs)
			batched += len(idxs)
		}
	}
	if instrumented {
		sweepCellsBatched.Add(uint64(batched))
		sweepCellsFallback.Add(uint64(fluidCells - batched))
	}
	if len(runs) == 0 {
		return nil
	}

	outs := make([]*batchOut, len(specs))
	// Group workers write disjoint outs entries, so the slice needs no
	// lock. The group function never returns an error: per-cell failures
	// (divergence, chaos compile errors) are recorded in outs and
	// surfaced by the per-cell pass with Sweep's usual fail-fast rules.
	parallel.MapCtx(ctx, len(runs), cfg.Workers, func(ctx context.Context, g int) (struct{}, error) {
		runBatchGroup(ctx, specs, runs[g], outs)
		return struct{}{}, nil
	})
	return outs
}

// restoredCells peeks at the checkpoint a resuming sweep will restore
// from, so batch groups exclude cells whose results will never be
// recomputed. The peek is read-only; the harness loads the file again
// itself.
func restoredCells(cfg *SweepConfig, n int) map[int]bool {
	if !cfg.Resume || cfg.Checkpoint == "" {
		return nil
	}
	ck := newCheckpointer(cfg, n)
	if ck == nil {
		return nil
	}
	m := make(map[int]bool)
	for i := 0; i < n; i++ {
		if _, ok := ck.cached(i); ok {
			m[i] = true
		}
	}
	return m
}

// runBatchGroup steps one group of cells in lockstep and fills their
// outs entries. On context cancellation it returns with the group's
// entries still nil — those cells fall through to the per-cell pass,
// which observes the cancellation before emitting anything.
func runBatchGroup(ctx context.Context, specs []Spec, idxs []int, outs []*batchOut) {
	first := &specs[idxs[0]]
	fs0 := first.Substrate.(*FluidSpec)
	steps := fs0.Steps
	instrumented := obs.Enabled()

	// The group span brackets the whole lockstep unit of work; the
	// precompute/step/emit child spans split it into the fluid.Batch
	// phases, so a timeline shows where a batched group's time goes.
	ctx, gsp := obs.StartSpan(ctx, "engine.batch.group")
	gsp.SetDetail(strconv.Itoa(len(idxs)) + " cells × " + strconv.Itoa(steps) + " steps")
	defer gsp.End()
	_, psp := obs.StartSpan(ctx, "engine.batch.precompute")

	// One shared injector per group: every cell in the group carries the
	// same (schedule, seed, flows) triple, so per-cell compilation would
	// yield identical injectors anyway.
	var inj *chaos.Injector
	if first.Chaos != nil {
		var err error
		inj, err = first.Chaos.Compile(first.ChaosSeed, len(fs0.Senders), 1)
		if err != nil {
			for _, i := range idxs {
				outs[i] = &batchOut{err: err}
			}
			if instrumented {
				runTelByKind[kFluid].failed.Add(uint64(len(idxs)))
			}
			psp.End()
			return
		}
	}

	cells := make([]fluid.BatchCell, len(idxs))
	for j, i := range idxs {
		fs := specs[i].Substrate.(*FluidSpec)
		cfg := fs.Cfg
		if inj != nil {
			cfg.Perturb = inj
		}
		cells[j] = fluid.BatchCell{Cfg: cfg, Senders: fs.Senders}
	}
	b, err := fluid.NewBatch(cells)
	if err != nil {
		// The planner admitted the cells, so this is unreachable; if it
		// ever fires, leaving outs nil routes the group per-cell, which
		// is always correct.
		psp.End()
		return
	}

	type cellRun struct {
		spec *Spec
		tr   *trace.Trace
		out  batchOut
		done bool
		// Strip-mined emission buffers, nil when the cell has no
		// observers. Emitting round-robin across the group — one Observe
		// per cell per step — touches every observer's working set every
		// step, which thrashes the cache badly enough to cancel the SoA
		// stepping win. Buffering emitStrip steps per cell and flushing
		// one cell at a time keeps each observer hot for a run of
		// consecutive Observe calls. Per-stream observation order is
		// unchanged, and Step.Windows is only valid during Observe (same
		// contract as the per-cell path), so observers cannot tell.
		//
		// windows is flow-major with column stride emitStrip (flow i's
		// buffered samples at windows[i*emitStrip+0 .. i*emitStrip+n-1]),
		// matching the Strip layout so full strips flush without a
		// transpose; partial strips compact their columns in place first.
		flows   int
		base    int // step index of the first buffered entry
		n       int // buffered entries
		windows []float64
		row     []float64 // per-step gather scratch for plain Observers
		rtt     []float64
		loss    []float64
		total   []float64
	}
	runs := make([]cellRun, len(idxs))
	for j, i := range idxs {
		runs[j].spec = &specs[i]
		if specs[i].Record {
			cfg := b.Config(j)
			runs[j].tr = trace.New(len(cells[j].Senders), cfg.Capacity(), cfg.BaseRTT(), steps)
		}
		if len(specs[i].Observers) > 0 {
			f := len(cells[j].Senders)
			runs[j].flows = f
			runs[j].windows = make([]float64, emitStrip*f)
			runs[j].row = make([]float64, f)
			runs[j].rtt = make([]float64, emitStrip)
			runs[j].loss = make([]float64, emitStrip)
			runs[j].total = make([]float64, emitStrip)
		}
	}
	flush := func(r *cellRun) {
		if r.n == 0 {
			return
		}
		f := r.flows
		if r.n < emitStrip {
			// Partial strip: close the gaps so column i sits at stride
			// r.n, as Strip promises. copy has memmove semantics and the
			// columns move strictly leftward in increasing i, so in-place
			// compaction is safe.
			for i := 1; i < f; i++ {
				copy(r.windows[i*r.n:(i+1)*r.n], r.windows[i*emitStrip:i*emitStrip+r.n])
			}
		}
		strip := Strip{
			Start:   r.base,
			Count:   r.n,
			Flows:   f,
			Windows: r.windows[:r.n*f],
			Totals:  r.total[:r.n],
			RTT:     r.rtt[:r.n],
			Loss:    r.loss[:r.n],
		}
		for _, o := range r.spec.Observers {
			if so, ok := o.(StripObserver); ok {
				so.ObserveStrip(strip)
				continue
			}
			for k := 0; k < r.n; k++ {
				for i := 0; i < f; i++ {
					r.row[i] = r.windows[i*r.n+k]
				}
				o.Observe(Step{
					Index:   r.base + k,
					Windows: r.row,
					Total:   r.total[k],
					RTT:     r.rtt[k],
					Loss:    r.loss[k],
				})
			}
		}
		r.base += r.n
		r.n = 0
	}

	psp.End()

	// The step span covers the lockstep loop including inline strip
	// flushes (emission interleaves with stepping by design); the emit
	// span after it is the final drain of partial strips.
	_, ssp := obs.StartSpan(ctx, "engine.batch.step")
	live := len(runs)
	for s := 0; s < steps && live > 0; s++ {
		if s&0xff == 0 {
			if ctx.Err() != nil {
				ssp.End()
				return
			}
		}
		b.Step()
		for j := range runs {
			r := &runs[j]
			if r.done {
				continue
			}
			if err := b.Err(j); err != nil {
				// Divergence: like the per-cell path, the failing step is
				// neither recorded nor emitted, and the cell stops (after
				// flushing the steps buffered before the failure).
				r.out.err = err
				r.done = true
				live--
				if r.windows != nil {
					flush(r)
				}
				continue
			}
			w := b.Windows(j)
			if r.tr != nil {
				r.tr.Append(w, b.RTT(j), b.CongLoss(j))
			}
			if r.windows != nil {
				total := 0.0
				off := r.n
				for k, v := range w {
					r.windows[k*emitStrip+off] = v
					total += v
				}
				r.rtt[r.n] = b.RTT(j)
				r.loss[r.n] = b.CongLoss(j)
				r.total[r.n] = total
				r.n++
				if r.n == emitStrip {
					flush(r)
				}
			}
		}
	}
	ssp.End()

	_, esp := obs.StartSpan(ctx, "engine.batch.emit")
	for j := range runs {
		if runs[j].windows != nil {
			flush(&runs[j])
		}
	}
	esp.End()

	for j, i := range idxs {
		r := &runs[j]
		if r.out.err == nil {
			r.out.res = &Result{Trace: r.tr, Steps: steps}
		}
		outs[i] = &r.out
	}
	if instrumented {
		// Mirror Run's per-kind counters so dashboards see batched cells
		// too (run durations are not recorded: a lockstep group has no
		// per-cell wall time).
		failed := 0
		for j := range runs {
			if runs[j].out.err != nil {
				failed++
			}
		}
		if failed > 0 {
			runTelByKind[kFluid].failed.Add(uint64(failed))
		}
		if ok := len(runs) - failed; ok > 0 {
			runTelByKind[kFluid].runs.Add(uint64(ok))
			runTelByKind[kFluid].steps.Add(uint64(ok) * uint64(steps))
		}
	}
}
