package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// The crash-resume end-to-end test re-execs this test binary as a child
// that runs a slow checkpointed sweep, SIGKILLs it mid-run — the signal
// a scheduler or OOM killer actually sends, with no chance to clean up
// — and asserts a resumed sweep restores the checkpointed cells and
// produces bit-identical results to an uninterrupted run.

const crashChildEnv = "REPRO_ENGINE_CRASH_CHILD"

func TestMain(m *testing.M) {
	if path := os.Getenv(crashChildEnv); path != "" {
		crashChildSweep(path)
		os.Exit(0)
	}
	os.Exit(m.Run())
}

const (
	crashCells = 12
	crashSeed  = 0xC0FFEE
)

// crashCellValue is the deterministic payload every variant of the
// sweep computes: pure function of (index, seed), JSON round-trip safe.
type crashCellValue struct {
	Cell int     `json:"cell"`
	Seed uint64  `json:"seed"`
	V    float64 `json:"v"`
}

func crashCell(i int, seed uint64) crashCellValue {
	return crashCellValue{Cell: i, Seed: seed, V: math.Sin(float64(seed%100003)) * float64(i+1)}
}

// crashChildSweep is the child process: a serial sweep that flushes the
// checkpoint after every cell and dawdles long enough for the parent to
// kill it mid-grid.
func crashChildSweep(checkpoint string) {
	_, err := Sweep(context.Background(), crashCells,
		SweepConfig{BaseSeed: crashSeed, Workers: 1, Checkpoint: checkpoint, CheckpointEvery: 1},
		func(_ context.Context, i int, seed uint64) (crashCellValue, error) {
			time.Sleep(100 * time.Millisecond)
			return crashCell(i, seed), nil
		})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash child:", err)
		os.Exit(1)
	}
}

func TestCrashResumeBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills a child process")
	}
	checkpoint := filepath.Join(t.TempDir(), "sweep.checkpoint")
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), crashChildEnv+"="+checkpoint)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Wait until the child has checkpointed a few cells, then kill -9:
	// no deferred flush, no signal handler, nothing — whatever made the
	// last atomic rename is all that survives.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("child never checkpointed 3 cells")
		}
		if n := checkpointedCells(checkpoint); n >= 3 && n < crashCells {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() //nolint:errcheck // killed: exit status is expectedly non-zero
	restorable := checkpointedCells(checkpoint)
	if restorable == 0 || restorable >= crashCells {
		t.Fatalf("checkpoint holds %d cells after kill, want mid-run coverage", restorable)
	}

	// Resume against the survivor file. Count what actually executes:
	// the checkpointed cells must restore, not recompute.
	var executed atomic.Int64
	resumed, err := Sweep(context.Background(), crashCells,
		SweepConfig{BaseSeed: crashSeed, Workers: 1, Checkpoint: checkpoint, CheckpointEvery: 1, Resume: true},
		func(_ context.Context, i int, seed uint64) (crashCellValue, error) {
			executed.Add(1)
			return crashCell(i, seed), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if got := int(executed.Load()); got != crashCells-restorable {
		t.Fatalf("resume executed %d cells with %d checkpointed, want %d", got, restorable, crashCells-restorable)
	}

	// An uninterrupted run is the ground truth; the resumed run must
	// match it bit for bit (JSON bytes compare the float bits: Go
	// renders float64 with the shortest exact representation).
	clean, err := Sweep(context.Background(), crashCells,
		SweepConfig{BaseSeed: crashSeed, Workers: 1},
		func(_ context.Context, i int, seed uint64) (crashCellValue, error) {
			return crashCell(i, seed), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(resumed)
	b, _ := json.Marshal(clean)
	if string(a) != string(b) {
		t.Fatalf("resumed run differs from uninterrupted run:\n%s\n%s", a, b)
	}
}

// TestFlushCheckpointsSnapshotsLiveSweeps is the signal-handler path in
// miniature: a sweep with a lazy flush interval has completed cells only
// in memory; FlushCheckpoints (what lifecycle.Drain calls on SIGTERM)
// must force them to disk mid-flight.
func TestFlushCheckpointsSnapshotsLiveSweeps(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.checkpoint")
	reached := make(chan struct{})
	unblock := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := Sweep(context.Background(), 4,
			SweepConfig{BaseSeed: 9, Workers: 1, Checkpoint: path, CheckpointEvery: 100},
			func(_ context.Context, i int, seed uint64) (crashCellValue, error) {
				if i == 2 {
					close(reached)
					<-unblock
				}
				return crashCell(i, seed), nil
			})
		done <- err
	}()
	<-reached
	if n := checkpointedCells(path); n != 0 {
		t.Fatalf("flush interval ignored: %d cells on disk before FlushCheckpoints", n)
	}
	FlushCheckpoints()
	if n := checkpointedCells(path); n < 2 {
		t.Fatalf("FlushCheckpoints wrote %d cells, want the 2 completed ones", n)
	}
	close(unblock)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// checkpointedCells reads how many cells a snapshot currently holds
// (0 for a missing or torn file — the atomic rename makes torn
// impossible, but the test should not depend on that here).
func checkpointedCells(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	var snap struct {
		Cells []struct {
			Index int `json:"index"`
		} `json:"cells"`
	}
	if json.Unmarshal(data, &snap) != nil {
		return 0
	}
	return len(snap.Cells)
}
