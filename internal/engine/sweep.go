package engine

import (
	"context"
	"sync"

	"repro/internal/parallel"
)

// SweepConfig controls the grid orchestrator.
type SweepConfig struct {
	// Workers caps concurrent cells (0 = GOMAXPROCS, 1 = serial).
	Workers int
	// BaseSeed feeds the deterministic per-cell seed derivation; cells
	// receive CellSeed(BaseSeed, i) regardless of scheduling order, so a
	// sweep's results are identical at any worker count.
	BaseSeed uint64
	// Progress, when non-nil, is called after each completed cell with the
	// number done so far and the total. Calls are serialized; completion
	// order is nondeterministic under parallelism but done increments by
	// one each call.
	Progress func(done, total int)
}

// CellSeed derives the deterministic seed for cell i from base using a
// SplitMix64 finalizer, so neighboring cells get well-separated streams
// even for small bases.
func CellSeed(base uint64, i int) uint64 {
	z := base + 0x9e3779b97f4a7c15*uint64(i+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Sweep evaluates cell for every index in [0, n) across a worker pool,
// collecting results in input order. The first cell error cancels the
// sweep (fail fast: no new cells are claimed; in-flight cells finish) and
// is returned; likewise ctx cancellation stops claiming and returns
// ctx.Err().
func Sweep[T any](ctx context.Context, n int, cfg SweepConfig, cell func(ctx context.Context, i int, seed uint64) (T, error)) ([]T, error) {
	var (
		mu   sync.Mutex
		done int
	)
	return parallel.MapCtx(ctx, n, cfg.Workers, func(ctx context.Context, i int) (T, error) {
		v, err := cell(ctx, i, CellSeed(cfg.BaseSeed, i))
		if err == nil && cfg.Progress != nil {
			mu.Lock()
			done++
			cfg.Progress(done, n)
			mu.Unlock()
		}
		return v, err
	})
}
