package engine

import (
	"context"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// SweepConfig controls the grid orchestrator.
type SweepConfig struct {
	// Workers caps concurrent cells (0 = GOMAXPROCS, 1 = serial).
	Workers int
	// BaseSeed feeds the deterministic per-cell seed derivation; cells
	// receive CellSeed(BaseSeed, i) regardless of scheduling order, so a
	// sweep's results are identical at any worker count.
	BaseSeed uint64
	// Progress, when non-nil, is called after each completed cell —
	// whether the cell succeeded or returned an error — with the number
	// done so far and the total. Calls are serialized; completion order
	// is nondeterministic under parallelism but done increments by one
	// each call. On a fail-fast abort the remaining (never-started) cells
	// produce no calls, so done may stop short of total.
	Progress func(done, total int)
}

// CellSeed derives the deterministic seed for cell i from base by
// feeding base + φ·(i+1) through the SplitMix64 finalizer (Steele, Lea
// & Flood, OOPSLA 2014 — the same mixer JDK's SplittableRandom and
// xoshiro's seeding use). φ = 0x9e3779b97f4a7c15 is 2⁶⁴/golden-ratio,
// the Weyl-sequence increment: it is odd, so i ↦ base + φ·(i+1) is a
// bijection on uint64 and no two cells of one sweep can share a
// finalizer input; the finalizer itself is also bijective and avalanches
// (each input bit flips each output bit with probability ≈ ½), so
// neighboring cells — and sweeps whose small integer bases differ by
// 1 — still get statistically independent streams. Collisions within a
// base are therefore impossible by construction, not just unlikely; see
// TestCellSeedNoCollisions1e5 for the empirical sanity check.
func CellSeed(base uint64, i int) uint64 {
	z := base + 0x9e3779b97f4a7c15*uint64(i+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// sweep telemetry, recorded only while obs is enabled. Cached pointers:
// the registry preserves metric identity across Reset.
var (
	sweepCellsCompleted = obs.GetCounter("engine.sweep.cells.completed")
	sweepCellsFailed    = obs.GetCounter("engine.sweep.cells.failed")
	sweepCellDuration   = obs.GetHistogram("engine.sweep.cell.duration")
	sweepGrids          = obs.GetCounter("engine.sweep.grids")
)

// Sweep evaluates cell for every index in [0, n) across a worker pool,
// collecting results in input order. The first cell error cancels the
// sweep (fail fast: no new cells are claimed; in-flight cells finish) and
// is returned; likewise ctx cancellation stops claiming and returns
// ctx.Err().
//
// With observability enabled, every cell's latency lands in the
// engine.sweep.cell.duration histogram with completed/failed counters
// alongside, and a globally installed progress sink (obs.SetSweepProgress
// — the -progress flag of the cmd/* tools) is chained in front of
// cfg.Progress.
func Sweep[T any](ctx context.Context, n int, cfg SweepConfig, cell func(ctx context.Context, i int, seed uint64) (T, error)) ([]T, error) {
	progress := cfg.Progress
	if sink := obs.SweepProgressFunc(); sink != nil {
		if inner := progress; inner != nil {
			progress = func(done, total int) {
				sink(done, total)
				inner(done, total)
			}
		} else {
			progress = sink
		}
	}
	instrumented := obs.Enabled()
	if instrumented {
		sweepGrids.Inc()
		obs.AddCells(n)
	}
	var (
		mu   sync.Mutex
		done int
	)
	return parallel.MapCtx(ctx, n, cfg.Workers, func(ctx context.Context, i int) (T, error) {
		var start time.Time
		if instrumented {
			start = time.Now()
		}
		v, err := cell(ctx, i, CellSeed(cfg.BaseSeed, i))
		if instrumented {
			sweepCellDuration.Observe(time.Since(start))
			if err != nil {
				sweepCellsFailed.Inc()
			} else {
				sweepCellsCompleted.Inc()
			}
		}
		// Completions count toward progress whether or not the cell
		// errored: on a failing grid the bar keeps moving while in-flight
		// cells drain instead of silently undercounting.
		if progress != nil {
			mu.Lock()
			done++
			progress(done, n)
			mu.Unlock()
		}
		return v, err
	})
}
