package engine

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"repro/internal/fluid"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/retry"
)

// cellRetryPolicy is the backoff schedule between reseeded cell
// attempts: the historical 5ms→320ms doubling ladder, now with ±50%
// deterministic jitter (seeded by the cell seed, so grids stay
// reproducible) to decorrelate the retries of neighboring cells that
// failed together — e.g. when a shared store briefly stalled every
// worker at once. The shared helper is the same one axiomd uses for
// shard respawns.
var cellRetryPolicy = retry.Policy{
	Base:       5 * time.Millisecond,
	Max:        320 * time.Millisecond,
	Multiplier: 2,
	Jitter:     0.5,
}

// SweepConfig controls the grid orchestrator.
type SweepConfig struct {
	// Workers caps concurrent cells (0 = GOMAXPROCS, 1 = serial).
	Workers int
	// BaseSeed feeds the deterministic per-cell seed derivation; cells
	// receive CellSeed(BaseSeed, i) regardless of scheduling order, so a
	// sweep's results are identical at any worker count.
	BaseSeed uint64
	// Progress, when non-nil, is called after each completed cell —
	// whether the cell succeeded or returned an error — with the number
	// done so far and the total. Calls are serialized; completion order
	// is nondeterministic under parallelism but done increments by one
	// each call. On a fail-fast abort the remaining (never-started) cells
	// produce no calls, so done may stop short of total.
	Progress func(done, total int)

	// CellTimeout bounds each cell attempt; an attempt whose context
	// deadline expires counts as a transient failure. 0 means no
	// per-cell deadline (the process-wide default from SetHardening
	// applies when set).
	CellTimeout time.Duration
	// Retries is the number of extra attempts granted to a cell whose
	// failure looks transient (timeouts and unclassified errors — not
	// divergence, panics, or parent-context cancellation). Retry k runs
	// with the reseeded CellSeed(cellSeed, k) after a short deterministic
	// backoff.
	Retries int
	// Checkpoint, when non-empty, is a JSON file that periodically
	// snapshots completed-cell results keyed by CellSeed. The cell result
	// type must round-trip encoding/json (floats do so bit-exactly);
	// cells whose results don't marshal are silently not checkpointed.
	Checkpoint string
	// CheckpointEvery is the number of newly completed cells between
	// checkpoint writes (default 8).
	CheckpointEvery int
	// Resume loads Checkpoint before sweeping and skips every cell whose
	// (index, seed) matches, returning the stored result instead. A
	// checkpoint from a different grid shape or BaseSeed is ignored.
	Resume bool
	// NoBatch disables the grid-batch fast path of SweepSpecs, forcing
	// every cell through the per-cell engine (the -nobatch escape hatch).
	// Results are bit-identical either way; this is for isolating
	// suspected batching bugs and for benchmarking the scalar path.
	NoBatch bool
}

// CellSeed derives the deterministic seed for cell i from base by
// feeding base + φ·(i+1) through the SplitMix64 finalizer (Steele, Lea
// & Flood, OOPSLA 2014 — the same mixer JDK's SplittableRandom and
// xoshiro's seeding use). φ = 0x9e3779b97f4a7c15 is 2⁶⁴/golden-ratio,
// the Weyl-sequence increment: it is odd, so i ↦ base + φ·(i+1) is a
// bijection on uint64 and no two cells of one sweep can share a
// finalizer input; the finalizer itself is also bijective and avalanches
// (each input bit flips each output bit with probability ≈ ½), so
// neighboring cells — and sweeps whose small integer bases differ by
// 1 — still get statistically independent streams. Collisions within a
// base are therefore impossible by construction, not just unlikely; see
// TestCellSeedNoCollisions1e5 for the empirical sanity check.
func CellSeed(base uint64, i int) uint64 {
	z := base + 0x9e3779b97f4a7c15*uint64(i+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// sweep telemetry, recorded only while obs is enabled. Cached pointers:
// the registry preserves metric identity across Reset.
var (
	sweepCellsCompleted = obs.GetCounter("engine.sweep.cells.completed")
	sweepCellsFailed    = obs.GetCounter("engine.sweep.cells.failed")
	sweepCellsPanicked  = obs.GetCounter("engine.sweep.cells.panicked")
	sweepCellsRetried   = obs.GetCounter("engine.sweep.cells.retried")
	sweepCellsRestored  = obs.GetCounter("engine.sweep.cells.restored")
	sweepCellDuration   = obs.GetHistogram("engine.sweep.cell.duration")
	sweepGrids          = obs.GetCounter("engine.sweep.grids")
)

// Sweep evaluates cell for every index in [0, n) across a worker pool,
// collecting results in input order. The first cell error cancels the
// sweep (fail fast: no new cells are claimed; in-flight cells finish) and
// is returned; likewise ctx cancellation stops claiming and returns
// ctx.Err(). A panicking cell is recovered into a per-cell
// *parallel.PanicError instead of killing the process.
//
// Per-cell deadlines, bounded retries, and checkpoint/resume are
// governed by the SweepConfig hardening fields (process-wide defaults
// via SetHardening / RegisterSweepFlags).
//
// With observability enabled, every cell's latency lands in the
// engine.sweep.cell.duration histogram with completed/failed counters
// alongside, and a globally installed progress sink (obs.SetSweepProgress
// — the -progress flag of the cmd/* tools) is chained in front of
// cfg.Progress.
func Sweep[T any](ctx context.Context, n int, cfg SweepConfig, cell func(ctx context.Context, i int, seed uint64) (T, error)) ([]T, error) {
	capNestedWorkers(ctx, &cfg)
	routeWorkers(n, &cfg)
	ctx, sp := obs.StartSpan(ctx, "engine.sweep")
	sp.SetDetail(strconv.Itoa(n) + " cells")
	defer sp.End()
	h := newHarness[T](n, &cfg)
	defer h.close()
	return parallel.MapCtx(ctx, n, cfg.Workers, h.wrap(cell))
}

// SweepSettled is Sweep without fail-fast: every cell runs to completion
// and failures — panics, timeouts, divergence — are reported per cell in
// the second return value (nil for successes) while the other cells'
// results stay valid. The third value is ctx.Err() when cancellation
// stopped cells from being claimed; those cells carry the context error.
func SweepSettled[T any](ctx context.Context, n int, cfg SweepConfig, cell func(ctx context.Context, i int, seed uint64) (T, error)) ([]T, []error, error) {
	capNestedWorkers(ctx, &cfg)
	routeWorkers(n, &cfg)
	ctx, sp := obs.StartSpan(ctx, "engine.sweep")
	sp.SetDetail(strconv.Itoa(n) + " cells")
	defer sp.End()
	h := newHarness[T](n, &cfg)
	defer h.close()
	return parallel.MapSettled(ctx, n, cfg.Workers, h.wrap(cell))
}

// nestedSweepKey marks contexts handed to sweep cells, so a sweep started
// from inside a cell can tell it is nested.
type nestedSweepKey struct{}

// InSweepCell reports whether ctx descends from a sweep cell's context.
func InSweepCell(ctx context.Context) bool {
	return ctx != nil && ctx.Value(nestedSweepKey{}) != nil
}

// capNestedWorkers defaults an unset worker count to serial when the
// sweep is launched from inside another sweep's cell: the outer grid
// already owns the cores, and a nested GOMAXPROCS-wide pool would
// oversubscribe them quadratically. An explicit cfg.Workers is honored —
// the caller has claimed responsibility for the budget.
func capNestedWorkers(ctx context.Context, cfg *SweepConfig) {
	if cfg.Workers == 0 && InSweepCell(ctx) {
		cfg.Workers = 1
	}
}

// routeWorkers resolves an unset worker count to the cheapest execution
// shape for an n-cell grid: serial for degenerate grids (n ≤ 1 — the
// pool then runs inline, spawning no goroutines), and min(GOMAXPROCS, n)
// workers otherwise, so a small grid never pays for idle workers. An
// explicit cfg.Workers is an override and is honored as-is; cfg.NoBatch
// likewise overrides the third tier, SweepSpecs' batched path. This
// makes the routing decision explicit and testable instead of a side
// effect of the worker pool's internal capping.
func routeWorkers(n int, cfg *SweepConfig) {
	if cfg.Workers != 0 {
		return
	}
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	cfg.Workers = w
}

// harness carries the per-sweep state shared by Sweep and SweepSettled:
// the chained progress sink, the instrumentation flag, and the optional
// checkpointer.
type harness[T any] struct {
	cfg          *SweepConfig
	n            int
	instrumented bool
	progress     func(done, total int)
	ck           *checkpointer
	mu           sync.Mutex
	done         int
}

func newHarness[T any](n int, cfg *SweepConfig) *harness[T] {
	applyHardening(cfg)
	h := &harness[T]{cfg: cfg, n: n, instrumented: obs.Enabled(), progress: cfg.Progress}
	if sink := obs.SweepProgressFunc(); sink != nil {
		if inner := h.progress; inner != nil {
			h.progress = func(done, total int) {
				sink(done, total)
				inner(done, total)
			}
		} else {
			h.progress = sink
		}
	}
	if h.instrumented {
		sweepGrids.Inc()
		obs.AddCells(n)
		// Mirror progress into the exposition endpoint's atomics so a
		// /snapshot scrape mid-sweep shows done/total without -progress.
		if inner := h.progress; inner != nil {
			h.progress = func(done, total int) {
				obs.ReportProgress(done, total)
				inner(done, total)
			}
		} else {
			h.progress = obs.ReportProgress
		}
	}
	h.ck = newCheckpointer(cfg, n)
	registerCheckpointer(h.ck)
	return h
}

// close flushes any pending checkpoint state, including after a
// fail-fast abort, so a -resume rerun picks up the completed cells.
func (h *harness[T]) close() {
	if h.ck != nil {
		unregisterCheckpointer(h.ck)
		h.ck.flush()
	}
}

// tick advances the serialized progress callback. Restored cells count
// like executed ones: done increments by one per cell either way.
func (h *harness[T]) tick() {
	if h.progress == nil {
		return
	}
	h.mu.Lock()
	h.done++
	h.progress(h.done, h.n)
	h.mu.Unlock()
}

// wrap builds the per-item function the worker pool runs: checkpoint
// restore, the deadline+retry attempt loop, instrumentation, checkpoint
// recording, and progress.
func (h *harness[T]) wrap(cell func(ctx context.Context, i int, seed uint64) (T, error)) func(ctx context.Context, i int) (T, error) {
	return func(ctx context.Context, i int) (T, error) {
		// Mark the cell's context so nested sweeps default to serial
		// (see capNestedWorkers).
		ctx = context.WithValue(ctx, nestedSweepKey{}, true)
		seed := CellSeed(h.cfg.BaseSeed, i)
		if h.ck != nil {
			if raw, ok := h.ck.cached(i); ok {
				var v T
				if json.Unmarshal(raw, &v) == nil {
					if h.instrumented {
						sweepCellsRestored.Inc()
					}
					h.tick()
					return v, nil
				}
			}
		}
		var start time.Time
		var csp *obs.Span
		if h.instrumented {
			start = time.Now()
			ctx, csp = obs.StartSpan(ctx, "engine.sweep.cell")
			csp.SetDetail("cell " + strconv.Itoa(i))
		}
		v, err := runCellAttempts(ctx, h.cfg, i, seed, cell)
		if h.instrumented {
			csp.End()
			sweepCellDuration.Observe(time.Since(start))
			if err != nil {
				sweepCellsFailed.Inc()
			} else {
				sweepCellsCompleted.Inc()
			}
		}
		if err == nil && h.ck != nil {
			h.ck.record(i, v)
		}
		// Completions count toward progress whether or not the cell
		// errored: on a failing grid the bar keeps moving while in-flight
		// cells drain instead of silently undercounting.
		h.tick()
		return v, err
	}
}

// runCellAttempts executes one cell under the configured deadline and
// retry budget. Attempt k > 0 runs with the reseeded CellSeed(seed, k)
// after a short deterministic backoff. Panics (recovered per attempt),
// divergence, and parent-context cancellation are permanent; deadline
// expiry and unclassified errors are transient.
func runCellAttempts[T any](ctx context.Context, cfg *SweepConfig, i int, seed uint64, cell func(ctx context.Context, i int, seed uint64) (T, error)) (T, error) {
	var zero T
	for attempt := 0; ; attempt++ {
		s := seed
		if attempt > 0 {
			s = CellSeed(seed, attempt)
		}
		actx, cancel := ctx, func() {}
		if cfg.CellTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, cfg.CellTimeout)
		}
		v, err := runAttempt(actx, i, s, cell)
		cancel()
		if err == nil {
			return v, nil
		}
		var pe *parallel.PanicError
		if errors.As(err, &pe) {
			if obs.Enabled() {
				sweepCellsPanicked.Inc()
				// A recovered cell panic is the flight recorder's reason to
				// exist: dump the ring (what every worker just did) to
				// stderr and attach it to the run record as evidence.
				obs.NoteEvent("panic", "engine.sweep.cell", "cell "+strconv.Itoa(i))
				obs.DumpFlight(os.Stderr)
				obs.AttachFlightToRecord()
			}
			return zero, err
		}
		if errors.Is(err, fluid.ErrDiverged) {
			return zero, err // deterministic blow-up: a retry replays it
		}
		if ctx.Err() != nil {
			return zero, err // the whole sweep is being torn down
		}
		if obs.Enabled() && errors.Is(actx.Err(), context.DeadlineExceeded) {
			obs.NoteEvent("deadline", "engine.sweep.cell",
				"cell "+strconv.Itoa(i)+" attempt "+strconv.Itoa(attempt)+" hit "+cfg.CellTimeout.String())
			obs.DumpFlight(os.Stderr)
			obs.AttachFlightToRecord()
		}
		if attempt >= cfg.Retries {
			return zero, err
		}
		if obs.Enabled() {
			sweepCellsRetried.Inc()
			obs.NoteEvent("retry", "engine.sweep.cell",
				"cell "+strconv.Itoa(i)+" attempt "+strconv.Itoa(attempt)+": "+err.Error())
			obs.AttachFlightToRecord()
		}
		if serr := retry.Sleep(ctx, cellRetryPolicy.Delay(attempt, seed)); serr != nil {
			return zero, serr
		}
	}
}

// runAttempt invokes cell with per-attempt panic recovery, so a panic on
// attempt 0 is classified (and counted) before the retry logic runs.
func runAttempt[T any](ctx context.Context, i int, seed uint64, cell func(ctx context.Context, i int, seed uint64) (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &parallel.PanicError{Item: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return cell(ctx, i, seed)
}
