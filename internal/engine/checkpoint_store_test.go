package engine

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/runstore"
)

// TestCheckpointExternalizesToStore pins the unified payload format:
// with a CellStore installed, the checkpoint snapshot carries refs into
// the store instead of duplicating result JSON, and a resume resolves
// those refs back to bit-identical cells without re-executing anything.
func TestCheckpointExternalizesToStore(t *testing.T) {
	st, err := runstore.Open(t.TempDir(), runstore.Options{Version: "testver"})
	if err != nil {
		t.Fatal(err)
	}
	SetCheckpointStore(st)
	defer SetCheckpointStore(nil)

	const n = 9
	path := filepath.Join(t.TempDir(), "sweep.json")
	cell := func(_ context.Context, i int, seed uint64) (float64, error) {
		return checkpointCellValue(i, seed), nil
	}
	clean, err := Sweep(context.Background(), n, SweepConfig{Workers: 2, BaseSeed: 11}, cell)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Sweep(context.Background(), n, SweepConfig{Workers: 2, BaseSeed: 11, Checkpoint: path}, cell); err != nil {
		t.Fatal(err)
	}

	// The snapshot must reference the store, not inline results.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Cells []struct {
			Index  int             `json:"index"`
			Result json.RawMessage `json:"result"`
			Ref    string          `json:"ref"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Cells) != n {
		t.Fatalf("snapshot has %d cells, want %d", len(snap.Cells), n)
	}
	for _, c := range snap.Cells {
		if len(c.Result) != 0 {
			t.Fatalf("cell %d inlines its result despite the store", c.Index)
		}
		if !strings.HasPrefix(c.Ref, "sweepcell|") {
			t.Fatalf("cell %d ref = %q, want sweepcell|… store key", c.Index, c.Ref)
		}
		if _, ok := st.Get(c.Ref); !ok {
			t.Fatalf("cell %d ref %q not resolvable in the store", c.Index, c.Ref)
		}
	}

	var executed atomic.Int64
	resumed, err := Sweep(context.Background(), n, SweepConfig{Workers: 2, BaseSeed: 11, Checkpoint: path, Resume: true},
		func(ctx context.Context, i int, seed uint64) (float64, error) {
			executed.Add(1)
			return cell(ctx, i, seed)
		})
	if err != nil {
		t.Fatal(err)
	}
	if got := executed.Load(); got != 0 {
		t.Fatalf("resume re-executed %d cells, want 0", got)
	}
	for i := range clean {
		if resumed[i] != clean[i] {
			t.Fatalf("cell %d: resumed %v != clean %v", i, resumed[i], clean[i])
		}
	}
}

// TestCheckpointStoreMissRecomputes: refs that no longer resolve (store
// cleared — same effect as eviction or a source-hash change) degrade to
// a cold cell, never an error or a wrong value.
func TestCheckpointStoreMissRecomputes(t *testing.T) {
	st, err := runstore.Open(t.TempDir(), runstore.Options{Version: "testver"})
	if err != nil {
		t.Fatal(err)
	}
	SetCheckpointStore(st)
	defer SetCheckpointStore(nil)

	const n = 6
	path := filepath.Join(t.TempDir(), "sweep.json")
	cell := func(_ context.Context, i int, seed uint64) (float64, error) {
		return checkpointCellValue(i, seed), nil
	}
	clean, err := Sweep(context.Background(), n, SweepConfig{Workers: 1, BaseSeed: 5, Checkpoint: path}, cell)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Clear(); err != nil {
		t.Fatal(err)
	}
	var executed atomic.Int64
	resumed, err := Sweep(context.Background(), n, SweepConfig{Workers: 1, BaseSeed: 5, Checkpoint: path, Resume: true},
		func(ctx context.Context, i int, seed uint64) (float64, error) {
			executed.Add(1)
			return cell(ctx, i, seed)
		})
	if err != nil {
		t.Fatal(err)
	}
	if got := executed.Load(); got != n {
		t.Fatalf("resume over a cleared store executed %d cells, want all %d", got, n)
	}
	for i := range clean {
		if resumed[i] != clean[i] {
			t.Fatalf("cell %d: recomputed %v != clean %v", i, resumed[i], clean[i])
		}
	}
}

// TestCheckpointInlineWithoutStore: with no CellStore installed the
// snapshot keeps inlining results, exactly as before the store existed.
func TestCheckpointInlineWithoutStore(t *testing.T) {
	SetCheckpointStore(nil)
	const n = 4
	path := filepath.Join(t.TempDir(), "sweep.json")
	if _, err := Sweep(context.Background(), n, SweepConfig{Workers: 1, BaseSeed: 2, Checkpoint: path},
		func(_ context.Context, i int, seed uint64) (float64, error) {
			return checkpointCellValue(i, seed), nil
		}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"ref"`) {
		t.Fatal("storeless snapshot contains refs")
	}
	if !strings.Contains(string(data), `"result"`) {
		t.Fatal("storeless snapshot lost inline results")
	}
}
