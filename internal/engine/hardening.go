package engine

import (
	"flag"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Hardening is the process-wide default for the SweepConfig hardening
// fields, so CLI tools can mount one flag set and have the sweeps in the
// process honor it. CellTimeout and Retries apply to every sweep whose
// config leaves them zero; the checkpoint fields apply only to sweeps
// that opt in via Checkpointable (restore requires a JSON-faithful cell
// result type, which the engine cannot verify generically).
type Hardening struct {
	// CellTimeout bounds each cell attempt (0 = none).
	CellTimeout time.Duration
	// Retries is the per-cell transient-failure retry budget.
	Retries int
	// Checkpoint is the snapshot file path. When more than one opted-in
	// sweep runs in a process, the second and later sweeps write to an
	// ordinal variant (foo.json → foo.2.json) so they don't clobber each
	// other.
	Checkpoint string
	// Resume loads the checkpoint before sweeping.
	Resume bool
	// NoBatch disables the grid-batch fast path process-wide (the
	// -nobatch escape hatch).
	NoBatch bool
}

var (
	hardeningMu  sync.Mutex
	hardening    Hardening
	checkpointed atomic.Int64 // sweeps that adopted the default checkpoint path
)

// SetHardening installs the process-wide defaults and resets the
// checkpoint-path ordinal.
func SetHardening(h Hardening) {
	hardeningMu.Lock()
	hardening = h
	hardeningMu.Unlock()
	checkpointed.Store(0)
}

// applyHardening fills zero-valued timeout/retry fields of cfg from the
// process-wide defaults. The checkpoint default is deliberately NOT
// applied here: restore requires the cell result type to round-trip
// encoding/json faithfully (a type with unexported fields marshals as
// "{}" and would silently restore empty), and the engine cannot verify
// that generically — sweeps opt in via Checkpointable.
func applyHardening(cfg *SweepConfig) {
	hardeningMu.Lock()
	h := hardening
	hardeningMu.Unlock()
	if cfg.CellTimeout == 0 {
		cfg.CellTimeout = h.CellTimeout
	}
	if cfg.Retries == 0 {
		cfg.Retries = h.Retries
	}
	if h.NoBatch {
		cfg.NoBatch = true
	}
}

// Checkpointable returns cfg with the process-wide checkpoint defaults
// applied (explicit per-sweep values win). Call it only for sweeps whose
// cell result type round-trips encoding/json faithfully — i.e. all state
// lives in exported fields — since that is what restore replays. When
// several opted-in sweeps run in one process, the second and later
// adopters write to ordinal variants of the default path (foo.json →
// foo.2.json) so they don't clobber each other.
func Checkpointable(cfg SweepConfig) SweepConfig {
	hardeningMu.Lock()
	h := hardening
	hardeningMu.Unlock()
	if cfg.Checkpoint == "" && h.Checkpoint != "" {
		cfg.Checkpoint = h.Checkpoint
		cfg.Resume = cfg.Resume || h.Resume
		if seq := checkpointed.Add(1); seq > 1 {
			cfg.Checkpoint = ordinalPath(h.Checkpoint, int(seq))
		}
	}
	return cfg
}

// ordinalPath inserts the sweep ordinal before the extension:
// sweep.json → sweep.2.json (extension-less paths get a plain suffix).
func ordinalPath(path string, seq int) string {
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + "." + strconv.Itoa(seq) + ext
}

// SweepFlags holds the parsed values of the shared sweep-hardening
// flags. Mount with RegisterSweepFlags before flag.Parse, then call
// Apply once parsing is done.
type SweepFlags struct {
	CellTimeout time.Duration
	Retries     int
	Checkpoint  string
	Resume      bool
	NoBatch     bool
}

// RegisterSweepFlags mounts -cell-timeout, -retries, -checkpoint,
// -resume, and -nobatch on fs (typically flag.CommandLine) and returns
// the holder to Apply after parsing.
func RegisterSweepFlags(fs *flag.FlagSet) *SweepFlags {
	f := &SweepFlags{}
	fs.DurationVar(&f.CellTimeout, "cell-timeout", 0, "per-cell attempt deadline for sweeps (0 = none)")
	fs.IntVar(&f.Retries, "retries", 0, "extra attempts for transiently failing sweep cells")
	fs.StringVar(&f.Checkpoint, "checkpoint", "", "periodically snapshot completed sweep cells to this JSON file")
	fs.BoolVar(&f.Resume, "resume", false, "resume from -checkpoint, skipping already-completed cells")
	fs.BoolVar(&f.NoBatch, "nobatch", false, "disable batched grid stepping; run every sweep cell individually")
	return f
}

// Apply installs the parsed flag values as the process-wide hardening
// defaults.
func (f *SweepFlags) Apply() {
	SetHardening(Hardening{
		CellTimeout: f.CellTimeout,
		Retries:     f.Retries,
		Checkpoint:  f.Checkpoint,
		Resume:      f.Resume,
		NoBatch:     f.NoBatch,
	})
}
