package engine

import (
	"context"
	"errors"
	"testing"

	"repro/internal/obs"
)

// stubSubstrate is a no-op substrate for isolating the engine wrapper's
// own cost and behavior from any simulator.
type stubSubstrate struct {
	res *Result
	err error
}

func (s *stubSubstrate) Meta() Meta { return Meta{Flows: 1, Horizon: 1} }
func (s *stubSubstrate) run(context.Context, Spec) (*Result, error) {
	if s.err != nil {
		return nil, s.err
	}
	return s.res, nil
}

// TestRunDisabledAllocFree pins the obs-gate contract on the run path:
// with obs disabled, engine.Run adds zero allocations on top of the
// substrate (the substrate here is a no-op, so the wrapper is all that
// is measured). CI runs this under -race.
func TestRunDisabledAllocFree(t *testing.T) {
	obs.Disable()
	ctx := context.Background()
	spec := Spec{Substrate: &stubSubstrate{res: &Result{Steps: 1}}}
	if avg := testing.AllocsPerRun(1000, func() {
		if _, err := Run(ctx, spec); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("Run allocates %.2f times per call with obs disabled, want 0", avg)
	}
}

func TestRunInstrumentedEmitsSpanAndCounters(t *testing.T) {
	obs.Enable()
	defer func() { obs.Disable(); obs.Reset(); obs.ResetFlight() }()
	obs.Reset()
	obs.ResetFlight()

	spec := Spec{Substrate: &stubSubstrate{res: &Result{Steps: 5}}}
	if _, err := Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	// The stub is neither fluid, packet, nor net, so it lands in "other".
	if got := runTelByKind[kOther].runs.Value(); got != 1 {
		t.Fatalf("engine.runs.other = %d, want 1", got)
	}
	if got := runTelByKind[kOther].steps.Value(); got != 5 {
		t.Fatalf("engine.steps.other = %d, want 5", got)
	}
	if got := obs.GetHistogram("span.engine.run.other").Count(); got != 1 {
		t.Fatalf("span.engine.run.other count = %d, want 1", got)
	}

	spec = Spec{Substrate: &stubSubstrate{err: errors.New("boom")}}
	if _, err := Run(context.Background(), spec); err == nil {
		t.Fatal("expected error from failing substrate")
	}
	if got := runTelByKind[kOther].failed.Value(); got != 1 {
		t.Fatalf("engine.runs.failed.other = %d, want 1", got)
	}
}

func TestSweepInstrumentedEmitsCellSpansAndProgress(t *testing.T) {
	obs.Enable()
	defer func() { obs.Disable(); obs.Reset(); obs.ResetFlight() }()
	obs.Reset()
	obs.ResetFlight()
	obs.ReportProgress(0, 0)

	const n = 6
	_, err := Sweep(context.Background(), n, SweepConfig{Workers: 2}, func(ctx context.Context, i int, seed uint64) (int, error) {
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := obs.GetHistogram("span.engine.sweep").Count(); got != 1 {
		t.Fatalf("span.engine.sweep count = %d, want 1", got)
	}
	if got := obs.GetHistogram("span.engine.sweep.cell").Count(); got != n {
		t.Fatalf("span.engine.sweep.cell count = %d, want %d", got, n)
	}
	if p := obs.ProgressState(); p.Done != n || p.Total != n {
		t.Fatalf("ProgressState = %+v, want %d/%d", p, n, n)
	}
}

func TestSweepRetryRecordsFlightEvent(t *testing.T) {
	obs.Enable()
	defer func() { obs.Disable(); obs.Reset(); obs.ResetFlight(); obs.EndRecord() }()
	obs.Reset()
	obs.ResetFlight()
	rec := obs.BeginRecord("test")

	attempts := 0
	_, err := Sweep(context.Background(), 1, SweepConfig{Workers: 1, Retries: 2}, func(ctx context.Context, i int, seed uint64) (int, error) {
		attempts++
		if attempts < 3 {
			return 0, errors.New("transient")
		}
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 3 {
		t.Fatalf("cell ran %d times, want 3", attempts)
	}
	retries := 0
	for _, e := range obs.FlightEvents() {
		if e.Kind == "retry" && e.Name == "engine.sweep.cell" {
			retries++
		}
	}
	if retries != 2 {
		t.Fatalf("flight ring has %d retry events, want 2", retries)
	}
	// The retry path must also have attached the evidence to the record.
	recRetries := 0
	for _, e := range rec.Flight {
		if e.Kind == "retry" {
			recRetries++
		}
	}
	if recRetries == 0 {
		t.Fatal("run record missing retry flight events")
	}
}
