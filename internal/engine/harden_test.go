package engine

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/fluid"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/protocol"
)

// A panicking cell must surface as an error, not kill the process.
func TestSweepPanicRecovered(t *testing.T) {
	_, err := Sweep(context.Background(), 8, SweepConfig{Workers: 2},
		func(_ context.Context, i int, _ uint64) (int, error) {
			if i == 3 {
				panic("cell exploded")
			}
			return i, nil
		})
	var pe *parallel.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want a *parallel.PanicError", err)
	}
	if pe.Item != 3 {
		t.Fatalf("panicked item = %d, want 3", pe.Item)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic error carries no stack")
	}
}

// Progress still fires for the panicked cell (satellite: recover →
// per-cell error, Progress still fires).
func TestSweepProgressFiresOnPanic(t *testing.T) {
	var calls []int
	_, err := Sweep(context.Background(), 5, SweepConfig{
		Workers:  1,
		Progress: func(done, total int) { calls = append(calls, done) },
	}, func(_ context.Context, i int, _ uint64) (int, error) {
		if i == 0 {
			panic("first cell")
		}
		return i, nil
	})
	var pe *parallel.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want a *parallel.PanicError", err)
	}
	if len(calls) != 1 || calls[0] != 1 {
		t.Fatalf("progress calls = %v, want the panicked cell counted ([1])", calls)
	}
}

// Acceptance: a sweep containing one panicking cell and one timed-out
// cell completes, reports both as per-cell errors with the panicked /
// retried counters incremented, and returns valid results for every
// other cell.
func TestSweepSettledPanicAndTimeoutOthersValid(t *testing.T) {
	obs.Enable()
	obs.Reset()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	const n = 10
	out, errs, err := SweepSettled(context.Background(), n, SweepConfig{
		Workers:     4,
		CellTimeout: 30 * time.Millisecond,
		Retries:     1,
	}, func(ctx context.Context, i int, _ uint64) (int, error) {
		switch i {
		case 2:
			panic("cell 2 exploded")
		case 6:
			<-ctx.Done() // hang until the per-cell deadline fires
			return 0, ctx.Err()
		}
		return i * 10, nil
	})
	if err != nil {
		t.Fatalf("settled sweep returned pool error: %v", err)
	}
	var pe *parallel.PanicError
	if !errors.As(errs[2], &pe) {
		t.Fatalf("errs[2] = %v, want a *parallel.PanicError", errs[2])
	}
	if !errors.Is(errs[6], context.DeadlineExceeded) {
		t.Fatalf("errs[6] = %v, want context.DeadlineExceeded", errs[6])
	}
	for i := 0; i < n; i++ {
		if i == 2 || i == 6 {
			continue
		}
		if errs[i] != nil {
			t.Fatalf("healthy cell %d errored: %v", i, errs[i])
		}
		if out[i] != i*10 {
			t.Fatalf("healthy cell %d = %d, want %d", i, out[i], i*10)
		}
	}
	s := obs.TakeSnapshot()
	if got := s.Counters["engine.sweep.cells.panicked"]; got < 1 {
		t.Fatalf("panicked counter = %d, want ≥ 1", got)
	}
	if got := s.Counters["engine.sweep.cells.retried"]; got < 1 {
		t.Fatalf("retried counter = %d, want ≥ 1 (timed-out cell retries once)", got)
	}
	if got := s.Counters["engine.sweep.cells.failed"]; got < 2 {
		t.Fatalf("failed counter = %d, want ≥ 2", got)
	}
	if got := s.Counters["engine.sweep.cells.completed"]; got < n-2 {
		t.Fatalf("completed counter = %d, want ≥ %d", got, n-2)
	}
}

// Retry k runs with the reseeded CellSeed(cellSeed, k).
func TestSweepRetryReseeded(t *testing.T) {
	const base = 99
	var attempts atomic.Int64
	out, err := Sweep(context.Background(), 3, SweepConfig{Workers: 1, BaseSeed: base, Retries: 2},
		func(_ context.Context, i int, seed uint64) (uint64, error) {
			attempts.Add(1)
			if seed == CellSeed(base, i) {
				return 0, errors.New("transient flake on the first attempt")
			}
			return seed, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range out {
		want := CellSeed(CellSeed(base, i), 1)
		if got != want {
			t.Fatalf("cell %d succeeded with seed %#x, want reseeded attempt-1 seed %#x", i, got, want)
		}
	}
	if a := attempts.Load(); a != 6 {
		t.Fatalf("attempts = %d, want 2 per cell (6)", a)
	}
}

// Divergence is deterministic — a retry would replay it, so it must not
// consume the retry budget.
func TestSweepDivergedNotRetried(t *testing.T) {
	var attempts atomic.Int64
	_, err := Sweep(context.Background(), 1, SweepConfig{Workers: 1, Retries: 5},
		func(_ context.Context, i int, _ uint64) (int, error) {
			attempts.Add(1)
			return 0, fmt.Errorf("cell %d: %w", i, fluid.ErrDiverged)
		})
	if !errors.Is(err, fluid.ErrDiverged) {
		t.Fatalf("err = %v, want wrapped ErrDiverged", err)
	}
	if a := attempts.Load(); a != 1 {
		t.Fatalf("diverged cell ran %d times, want 1", a)
	}
}

// checkpointCell computes a seed-dependent float64 with a long mantissa,
// so any checkpoint round-trip imprecision would show as inequality.
func checkpointCellValue(i int, seed uint64) float64 {
	return float64(seed)*0x1p-64 + math.Sqrt(float64(i)+0.5)
}

// A resumed sweep returns bit-identical results to an uninterrupted one
// and does not re-execute checkpointed cells.
func TestSweepCheckpointResumeBitIdentical(t *testing.T) {
	const n = 12
	path := filepath.Join(t.TempDir(), "sweep.json")
	run := func(cfg SweepConfig, executed *atomic.Int64) []float64 {
		cfg.Workers = 4
		cfg.BaseSeed = 7
		out, err := Sweep(context.Background(), n, cfg,
			func(_ context.Context, i int, seed uint64) (float64, error) {
				if executed != nil {
					executed.Add(1)
				}
				return checkpointCellValue(i, seed), nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	clean := run(SweepConfig{}, nil)
	run(SweepConfig{Checkpoint: path}, nil)
	var executed atomic.Int64
	resumed := run(SweepConfig{Checkpoint: path, Resume: true}, &executed)
	if got := executed.Load(); got != 0 {
		t.Fatalf("resume re-executed %d cells, want 0", got)
	}
	for i := range clean {
		if resumed[i] != clean[i] {
			t.Fatalf("cell %d: resumed %v != uninterrupted %v", i, resumed[i], clean[i])
		}
	}
}

// An interrupted (fail-fast aborted) sweep leaves a usable checkpoint:
// the resume run recomputes only the missing cells and matches a clean
// run bit for bit.
func TestSweepCheckpointSurvivesAbort(t *testing.T) {
	const n = 10
	path := filepath.Join(t.TempDir(), "sweep.json")
	cell := func(_ context.Context, i int, seed uint64) (float64, error) {
		return checkpointCellValue(i, seed), nil
	}
	clean, err := Sweep(context.Background(), n, SweepConfig{Workers: 1, BaseSeed: 3}, cell)
	if err != nil {
		t.Fatal(err)
	}
	// First run: serial, cell 7 fails — cells 0..6 land in the checkpoint.
	boom := errors.New("boom")
	_, err = Sweep(context.Background(), n, SweepConfig{Workers: 1, BaseSeed: 3, Checkpoint: path},
		func(ctx context.Context, i int, seed uint64) (float64, error) {
			if i == 7 {
				return 0, boom
			}
			return cell(ctx, i, seed)
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	var executed atomic.Int64
	resumed, err := Sweep(context.Background(), n, SweepConfig{Workers: 1, BaseSeed: 3, Checkpoint: path, Resume: true},
		func(ctx context.Context, i int, seed uint64) (float64, error) {
			executed.Add(1)
			return cell(ctx, i, seed)
		})
	if err != nil {
		t.Fatal(err)
	}
	if got := executed.Load(); got != 3 {
		t.Fatalf("resume executed %d cells, want 3 (cells 7, 8, 9)", got)
	}
	for i := range clean {
		if resumed[i] != clean[i] {
			t.Fatalf("cell %d: resumed %v != clean %v", i, resumed[i], clean[i])
		}
	}
}

// A checkpoint from a different BaseSeed (or grid size) is ignored, not
// replayed.
func TestSweepResumeRejectsMismatchedCheckpoint(t *testing.T) {
	const n = 6
	path := filepath.Join(t.TempDir(), "sweep.json")
	cell := func(_ context.Context, i int, seed uint64) (float64, error) {
		return checkpointCellValue(i, seed), nil
	}
	if _, err := Sweep(context.Background(), n, SweepConfig{Workers: 1, BaseSeed: 1, Checkpoint: path}, cell); err != nil {
		t.Fatal(err)
	}
	var executed atomic.Int64
	if _, err := Sweep(context.Background(), n, SweepConfig{Workers: 1, BaseSeed: 2, Checkpoint: path, Resume: true},
		func(ctx context.Context, i int, seed uint64) (float64, error) {
			executed.Add(1)
			return cell(ctx, i, seed)
		}); err != nil {
		t.Fatal(err)
	}
	if got := executed.Load(); got != n {
		t.Fatalf("mismatched checkpoint skipped cells: executed %d, want %d", got, n)
	}
}

// Restored cells still count toward progress and the restored counter.
func TestSweepResumeProgressAndCounter(t *testing.T) {
	const n = 8
	path := filepath.Join(t.TempDir(), "sweep.json")
	cell := func(_ context.Context, i int, seed uint64) (float64, error) {
		return checkpointCellValue(i, seed), nil
	}
	if _, err := Sweep(context.Background(), n, SweepConfig{Workers: 2, Checkpoint: path}, cell); err != nil {
		t.Fatal(err)
	}
	obs.Enable()
	obs.Reset()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()
	var calls atomic.Int64
	if _, err := Sweep(context.Background(), n, SweepConfig{
		Workers:    2,
		Checkpoint: path,
		Resume:     true,
		Progress:   func(done, total int) { calls.Add(1) },
	}, cell); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != n {
		t.Fatalf("progress calls = %d, want %d (restored cells count)", got, n)
	}
	s := obs.TakeSnapshot()
	if got := s.Counters["engine.sweep.cells.restored"]; got != n {
		t.Fatalf("restored counter = %d, want %d", got, n)
	}
}

// SetHardening fills zero-valued SweepConfig fields; explicit per-sweep
// values win.
func TestHardeningDefaultsApplied(t *testing.T) {
	SetHardening(Hardening{CellTimeout: time.Second, Retries: 3})
	defer SetHardening(Hardening{})
	cfg := SweepConfig{}
	applyHardening(&cfg)
	if cfg.CellTimeout != time.Second || cfg.Retries != 3 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	explicit := SweepConfig{CellTimeout: time.Minute, Retries: 1}
	applyHardening(&explicit)
	if explicit.CellTimeout != time.Minute || explicit.Retries != 1 {
		t.Fatalf("explicit values overwritten: %+v", explicit)
	}
}

// The second sweep adopting the default checkpoint path writes to an
// ordinal variant instead of clobbering the first.
func TestHardeningCheckpointOrdinal(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "ck.json")
	SetHardening(Hardening{Checkpoint: base})
	defer SetHardening(Hardening{})
	cell := func(_ context.Context, i int, seed uint64) (float64, error) {
		return checkpointCellValue(i, seed), nil
	}
	for run := 0; run < 2; run++ {
		if _, err := Sweep(context.Background(), 4, Checkpointable(SweepConfig{Workers: 1}), cell); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range []string{base, filepath.Join(dir, "ck.2.json")} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("expected checkpoint %s: %v", p, err)
		}
	}
}

func TestRegisterSweepFlags(t *testing.T) {
	fs := flag.NewFlagSet("tool", flag.ContinueOnError)
	f := RegisterSweepFlags(fs)
	if err := fs.Parse([]string{"-cell-timeout", "2s", "-retries", "3", "-checkpoint", "x.json", "-resume"}); err != nil {
		t.Fatal(err)
	}
	f.Apply()
	defer SetHardening(Hardening{})
	cfg := Checkpointable(SweepConfig{})
	applyHardening(&cfg)
	if cfg.CellTimeout != 2*time.Second || cfg.Retries != 3 || cfg.Checkpoint != "x.json" || !cfg.Resume {
		t.Fatalf("flags not applied: %+v", cfg)
	}
}

// chaosSweepCell runs one fluid cell under a shared Gilbert–Elliott
// schedule and reduces the streamed windows to a single float64.
func chaosSweepCell(sched *chaos.Schedule) func(ctx context.Context, i int, seed uint64) (float64, error) {
	return func(ctx context.Context, i int, seed uint64) (float64, error) {
		var sum float64
		spec := Spec{
			Substrate: &FluidSpec{
				Cfg:     fluid.Config{Bandwidth: 1000 + 200*float64(i%4), PropDelay: 0.025, Buffer: 50},
				Senders: []fluid.Sender{{Proto: protocol.Reno(), Init: 1}, {Proto: protocol.Scalable(), Init: 2}},
				Steps:   400,
			},
			Observers: []Observer{ObserverFunc(func(s Step) { sum += s.Total })},
			Chaos:     sched,
			ChaosSeed: seed,
		}
		if _, err := Run(ctx, spec); err != nil {
			return 0, err
		}
		return sum, nil
	}
}

// Acceptance: a chaos-enabled sweep is bit-identical for Workers=1 vs 8,
// and for a resumed run vs an uninterrupted one.
func TestChaosSweepDeterminism(t *testing.T) {
	sched := chaos.BurstyLoss(0.02, 0.3, 0.08)
	if err := sched.Normalize(); err != nil {
		t.Fatal(err)
	}
	const n = 16
	run := func(cfg SweepConfig) []float64 {
		cfg.BaseSeed = 1234
		out, err := Sweep(context.Background(), n, cfg, chaosSweepCell(sched))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(SweepConfig{Workers: 1})
	parallel8 := run(SweepConfig{Workers: 8})
	for i := range serial {
		if serial[i] != parallel8[i] {
			t.Fatalf("cell %d: workers=1 %v != workers=8 %v", i, serial[i], parallel8[i])
		}
	}
	path := filepath.Join(t.TempDir(), "chaos.json")
	run(SweepConfig{Workers: 8, Checkpoint: path})
	resumed := run(SweepConfig{Workers: 8, Checkpoint: path, Resume: true})
	for i := range serial {
		if resumed[i] != serial[i] {
			t.Fatalf("cell %d: resumed %v != uninterrupted %v", i, resumed[i], serial[i])
		}
	}
}
