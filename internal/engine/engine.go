// Package engine unifies the repository's three simulation substrates —
// the §2 fluid-flow link (internal/fluid), the packet-level testbed
// (internal/packetsim), and the §6 multilink network (internal/multilink)
// — behind a single Spec → Run(ctx, spec) entry point.
//
// A Spec pairs a Substrate (what to simulate) with how to consume it:
// Record materializes the substrate's native result (a *trace.Trace, a
// *packetsim.Result, a *multilink.Result), while Observers stream every
// sample as it is produced, so axiom estimators can run online over a
// fixed-size ring buffer instead of a full trace. The two are independent
// — a sweep that only needs streaming statistics sets Record to false and
// allocates O(tail) instead of O(steps) per cell.
//
// Sweep is the companion orchestrator: it shards any cell grid across a
// worker pool with context cancellation, deterministic per-cell seeds,
// fail-fast error plumbing, and an optional progress callback. Every grid
// in internal/experiment runs through it.
package engine

import (
	"context"
	"errors"
	"time"

	"repro/internal/chaos"
	"repro/internal/multilink"
	"repro/internal/nettopo"
	"repro/internal/obs"
	"repro/internal/packetsim"
	"repro/internal/trace"
)

// Step is one streamed sample: the per-sender windows in effect, their
// sum, and the link feedback for the sampling interval. For the multilink
// substrate RTT and Loss are zero (a network has no single scalar of
// either) and Net carries the full per-link/per-flow step instead.
//
// Windows (and Net) alias simulator-owned buffers and are valid only for
// the duration of the Observe call; observers must copy what they keep.
type Step struct {
	Index   int                   // sample index, 0-based
	Windows []float64             // per-sender congestion windows
	Total   float64               // sum of Windows
	RTT     float64               // link RTT in seconds (single-link substrates)
	Loss    float64               // link loss rate (single-link substrates)
	Net     *multilink.StepResult // non-nil for the multilink substrate
	Topo    *nettopo.StepResult   // non-nil for the nettopo substrate
}

// Observer consumes streamed steps during a run.
type Observer interface {
	Observe(Step)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Step)

// Observe implements Observer.
func (f ObserverFunc) Observe(s Step) { f(s) }

// Meta describes a substrate before it runs, so observers can size their
// buffers: the number of senders, the link capacity C and base RTT
// (zero for multilink, where they are per-link), and the expected number
// of samples. Horizon is exact for the step-quantized substrates and a
// ±1 hint for the packet simulator's tick count.
type Meta struct {
	Flows    int
	Capacity float64
	BaseRTT  float64
	Horizon  int
}

// Substrate is one of the three simulators, wrapped for the engine.
// Substrate values are single-use: protocols carry state across steps, so
// build a fresh Spec for every run.
type Substrate interface {
	Meta() Meta
	run(ctx context.Context, spec Spec) (*Result, error)
}

// Spec is a complete run description.
type Spec struct {
	Substrate Substrate
	// Record materializes the substrate's native result in Result. Sweeps
	// that consume only streamed observers leave it false to avoid
	// allocating full traces.
	Record bool
	// Observers receive every sample in order. All observers see the same
	// Step value.
	Observers []Observer
	// Chaos, when non-nil, is a fault-injection schedule compiled against
	// the substrate's shape (flows × links) and applied while it runs.
	// The schedule value is read-only here, so one schedule can be shared
	// by every cell of a sweep.
	Chaos *chaos.Schedule
	// ChaosSeed seeds the schedule's randomized components (Gilbert–
	// Elliott chains, RTT jitter). Same schedule + same seed ⇒
	// bit-identical perturbations.
	ChaosSeed uint64
}

// Result is the outcome of a run. Exactly one of Trace/Packet/Net/Topo
// is populated per substrate kind when Record is set (Packet is populated
// even without Record — delivery counters are always kept — but its Trace
// field is then nil).
type Result struct {
	Trace  *trace.Trace      // fluid (Record); also aliases Packet.Trace
	Packet *packetsim.Result // packet substrate
	Net    *multilink.Result // multilink substrate (Record)
	Topo   *nettopo.Result   // nettopo substrate (Record)
	Steps  int               // samples produced
}

// Substrate kinds for per-kind telemetry, indexing runTelByKind.
const (
	kFluid = iota
	kPacket
	kNet
	kTopo
	kOther
	numKinds
)

// runTel is one substrate kind's cached telemetry handles. Hoisted out of
// the run path so the instrumented hot loop (a sweep calls Run per cell,
// the batch path bumps the fluid counters per group) does no registry map
// lookups.
type runTel struct {
	runs, failed, steps *obs.Counter
	dur                 *obs.Histogram
	span                string
}

var runTelByKind = func() [numKinds]runTel {
	var t [numKinds]runTel
	for k, name := range [numKinds]string{kFluid: "fluid", kPacket: "packet", kNet: "net", kTopo: "topo", kOther: "other"} {
		t[k] = runTel{
			runs:   obs.GetCounter("engine.runs." + name),
			failed: obs.GetCounter("engine.runs.failed." + name),
			steps:  obs.GetCounter("engine.steps." + name),
			dur:    obs.GetHistogram("engine.run.duration." + name),
			span:   "engine.run." + name,
		}
	}
	return t
}()

// Run executes the spec. It returns ctx.Err() soon after ctx is done.
//
// With observability enabled (internal/obs), Run wraps the substrate
// execution in an "engine.run.<kind>" span and feeds per-kind run counts,
// step totals, and wall-time histograms into the metrics registry;
// disabled, the only added cost is one atomic load per run.
func Run(ctx context.Context, spec Spec) (*Result, error) {
	if spec.Substrate == nil {
		return nil, errors.New("engine: spec has no substrate")
	}
	if !obs.Enabled() {
		return spec.Substrate.run(ctx, spec)
	}
	tel := &runTelByKind[substrateKind(spec.Substrate)]
	ctx, sp := obs.StartSpan(ctx, tel.span)
	start := time.Now()
	res, err := spec.Substrate.run(ctx, spec)
	tel.dur.Observe(time.Since(start))
	sp.End()
	if err != nil {
		tel.failed.Inc()
		return res, err
	}
	tel.runs.Inc()
	tel.steps.Add(uint64(res.Steps))
	return res, nil
}

// substrateKind classifies the substrate for per-kind telemetry.
func substrateKind(s Substrate) int {
	switch s.(type) {
	case *FluidSpec:
		return kFluid
	case *PacketSpec:
		return kPacket
	case *NetSpec:
		return kNet
	case *TopoSpec:
		return kTopo
	default:
		return kOther
	}
}

// emit fans one step out to every observer.
func emit(spec *Spec, st Step) {
	for _, o := range spec.Observers {
		o.Observe(st)
	}
}
