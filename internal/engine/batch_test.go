package engine

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/chaos"
	"repro/internal/fluid"
	"repro/internal/obs"
	"repro/internal/protocol"
)

// batchFamilies are the kernelized protocol specs the golden matrix
// covers — one per closed-form family (AIMD, MIMD, two Binomial points,
// Robust-AIMD, HighSpeed).
var batchFamilies = []string{"reno", "scalable", "iiad", "sqrt", "raimd:1,0.8,0.01", "hstcp"}

// batchGrid builds one self-describing spec per (family, init) pair:
// 2-sender fluid cells, recorded, with per-cell seeds. mutate lets a
// scenario attach chaos schedules or loss processes per cell.
func batchGrid(t *testing.T, steps int, mutate func(i int, spec *Spec)) []Spec {
	t.Helper()
	inits := [][]float64{{1, 40}, {25, 25}}
	var specs []Spec
	i := 0
	for _, fam := range batchFamilies {
		for _, init := range inits {
			senders, err := fluid.HomogeneousSenders(protocol.MustParse(fam), 2, init)
			if err != nil {
				t.Fatal(err)
			}
			cfg := fluidCfg()
			cfg.Seed = uint64(1000 + i)
			spec := Spec{
				Substrate: &FluidSpec{Cfg: cfg, Senders: senders, Steps: steps},
				Record:    true,
			}
			if mutate != nil {
				mutate(i, &spec)
			}
			specs = append(specs, spec)
			i++
		}
	}
	return specs
}

// runBothPaths evaluates the same grid through the batched path and the
// per-cell (-nobatch) path and asserts bit-identical traces. The grid is
// regenerated per run because substrates are single-use.
func runBothPaths(t *testing.T, grid func() []Spec, cfg SweepConfig) []*Result {
	t.Helper()
	batched, err := SweepSpecs(context.Background(), grid(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	nb := cfg
	nb.NoBatch = true
	scalar, err := SweepSpecs(context.Background(), grid(), nb)
	if err != nil {
		t.Fatal(err)
	}
	if len(batched) != len(scalar) {
		t.Fatalf("result count %d != %d", len(batched), len(scalar))
	}
	for i := range batched {
		if batched[i].Steps != scalar[i].Steps {
			t.Fatalf("cell %d: steps %d != %d", i, batched[i].Steps, scalar[i].Steps)
		}
		equalTraces(t, batched[i].Trace, scalar[i].Trace)
	}
	return batched
}

// TestSweepSpecsBitIdentityPlain is the plain column of the golden
// matrix: every batchable family, batched vs per-cell, bit-identical.
// It also pins the batched/fallback telemetry for an all-batchable grid.
func TestSweepSpecsBitIdentityPlain(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	b0, f0 := sweepCellsBatched.Value(), sweepCellsFallback.Value()
	res := runBothPaths(t, func() []Spec { return batchGrid(t, 300, nil) }, SweepConfig{Workers: 2})
	n := uint64(len(res))
	if got := sweepCellsBatched.Value() - b0; got != n {
		t.Errorf("batched counter advanced %d, want %d", got, n)
	}
	// The -nobatch leg routed every fluid cell per-cell.
	if got := sweepCellsFallback.Value() - f0; got != n {
		t.Errorf("fallback counter advanced %d, want %d", got, n)
	}
}

// batchChaosSchedule composes every injector mechanism the fluid batch
// must share bit-identically: capacity shocks, link flaps, a seeded
// Gilbert–Elliott loss chain, RTT jitter, and flow churn.
func batchChaosSchedule() *chaos.Schedule {
	s := &chaos.Schedule{Events: []chaos.Event{
		{Kind: chaos.KindCapacityScale, At: 40, Duration: 60, Scale: 0.5, Link: -1},
		{Kind: chaos.KindLinkFlap, At: 150, Duration: 5, Link: -1},
		{Kind: chaos.KindGELoss, At: 0, PGoodBad: 0.02, PBadGood: 0.3, LossBad: 0.1, Flow: -1, Link: -1},
		{Kind: chaos.KindRTTJitter, At: 0, Amplitude: 0.002, Link: -1},
		{Kind: chaos.KindFlowDepart, At: 100, Flow: 1},
		{Kind: chaos.KindFlowArrive, At: 200, Flow: 1},
	}}
	if err := s.Normalize(); err != nil {
		panic(err)
	}
	return s
}

// TestSweepSpecsBitIdentityChaos is the chaos column: cells sharing a
// compiled schedule batch together (one shared injector) and must match
// the per-cell path, where every cell compiles its own injector. Cells
// with a different schedule or seed form separate groups.
func TestSweepSpecsBitIdentityChaos(t *testing.T) {
	schedA, schedB := batchChaosSchedule(), batchChaosSchedule()
	grid := func() []Spec {
		return batchGrid(t, 300, func(i int, spec *Spec) {
			// Three chaos groups: schedule A seed 1, schedule A seed 2,
			// schedule B seed 1 — plus identical per-cell fluid seeds so
			// only the chaos grouping varies.
			switch i % 3 {
			case 0:
				spec.Chaos, spec.ChaosSeed = schedA, 1
			case 1:
				spec.Chaos, spec.ChaosSeed = schedA, 2
			case 2:
				spec.Chaos, spec.ChaosSeed = schedB, 1
			}
		})
	}
	obs.Enable()
	defer obs.Disable()
	b0 := sweepCellsBatched.Value()
	res := runBothPaths(t, grid, SweepConfig{Workers: 2})
	// All three chaos groups have ≥ 2 cells, so every cell of the batched
	// leg must actually have batched — a silent fallback would compare
	// per-cell against per-cell and prove nothing.
	if got, want := sweepCellsBatched.Value()-b0, uint64(len(res)); got != want {
		t.Errorf("batched counter advanced %d, want %d", got, want)
	}
}

// TestSweepSpecsBitIdentityRandomLoss is the seeded-randomness column:
// per-cell PacketLoss processes with distinct seeds, exercising the
// per-cell RNG streams inside one batch.
func TestSweepSpecsBitIdentityRandomLoss(t *testing.T) {
	grid := func() []Spec {
		return batchGrid(t, 300, func(i int, spec *Spec) {
			fs := spec.Substrate.(*FluidSpec)
			fs.Cfg.Loss = fluid.NewPacketLoss(0.003)
			fs.Cfg.Seed = uint64(77 + i)
		})
	}
	runBothPaths(t, grid, SweepConfig{Workers: 3})
}

// TestSweepSpecsCheckpointResume is the checkpoint/resume column: a
// batched sweep is canceled mid-flight, its checkpoint keeps the
// completed cells, and the resumed sweep — which must exclude restored
// cells from batch groups — finishes with results bit-identical to an
// uninterrupted per-cell run.
func TestSweepSpecsCheckpointResume(t *testing.T) {
	ckpath := filepath.Join(t.TempDir(), "sweep.json")
	grid := func() []Spec { return batchGrid(t, 300, nil) }

	// Phase 1: serial sweep, canceled after two cells completed.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := SweepConfig{
		Workers:    1,
		Checkpoint: ckpath,
		Progress: func(done, total int) {
			if done == 2 {
				cancel()
			}
		},
	}
	if _, err := SweepSpecs(ctx, grid(), cfg); err == nil {
		t.Fatal("canceled sweep returned nil error")
	}

	// Phase 2: resume. Restored cells come from the checkpoint, the rest
	// re-run (batched).
	obs.Enable()
	defer obs.Disable()
	r0 := obs.GetCounter("engine.sweep.cells.restored").Value()
	resumed, err := SweepSpecs(context.Background(), grid(), SweepConfig{
		Workers:    2,
		Checkpoint: ckpath,
		Resume:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := obs.GetCounter("engine.sweep.cells.restored").Value() - r0; got == 0 {
		t.Fatal("resume restored no cells; cancellation landed before any checkpoint record")
	}

	scalar, err := SweepSpecs(context.Background(), grid(), SweepConfig{Workers: 1, NoBatch: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range resumed {
		equalTraces(t, resumed[i].Trace, scalar[i].Trace)
	}
}

// TestSweepSpecsFallbackCoverage is the fallback column: non-batchable
// families (PCC, BBRish, Func, Vegas), stateful instances with live state
// (a primed Cubic), and unsynchronized senders silently take the per-cell
// path inside a mixed grid, with results bit-identical to -nobatch, and
// the telemetry splits the grid into batched + fallback exactly.
func TestSweepSpecsFallbackCoverage(t *testing.T) {
	nonBatchable := []func() fluid.Sender{
		func() fluid.Sender { return fluid.Sender{Proto: protocol.DefaultPCC(), Init: 10} },
		func() fluid.Sender { return fluid.Sender{Proto: protocol.NewBBRish(), Init: 10} },
		func() fluid.Sender {
			return fluid.Sender{Proto: &protocol.Func{Fn: func(fb protocol.Feedback) float64 {
				if fb.Loss > 0 {
					return fb.Window * 0.7
				}
				return fb.Window + 2
			}}, Init: 10}
		},
		func() fluid.Sender { return fluid.Sender{Proto: protocol.DefaultVegas(), Init: 10} },
		func() fluid.Sender {
			// Primed Cubic: the family is kernelized, but live state
			// declines the kernel and routes per-cell.
			p := protocol.CubicLinux()
			p.Next(protocol.Feedback{Window: 50})
			return fluid.Sender{Proto: p, Init: 10}
		},
		// Kernelized family, but unsynchronized feedback.
		func() fluid.Sender { return fluid.Sender{Proto: protocol.Reno(), Init: 10, Period: 3, Phase: 1} },
	}
	grid := func() []Spec {
		specs := batchGrid(t, 300, nil)
		for i, mk := range nonBatchable {
			cfg := fluidCfg()
			cfg.Seed = uint64(5000 + i)
			specs = append(specs, Spec{
				Substrate: &FluidSpec{
					Cfg:     cfg,
					Senders: []fluid.Sender{mk(), {Proto: protocol.Reno(), Init: 1}},
					Steps:   300,
				},
				Record: true,
			})
		}
		return specs
	}

	obs.Enable()
	defer obs.Disable()
	b0, f0 := sweepCellsBatched.Value(), sweepCellsFallback.Value()
	res := runBothPaths(t, grid, SweepConfig{Workers: 2})
	batchable := uint64(len(res) - len(nonBatchable))
	// Counter deltas include both legs: the batched leg splits the grid,
	// the -nobatch leg routes everything to fallback.
	if got := sweepCellsBatched.Value() - b0; got != batchable {
		t.Errorf("batched counter advanced %d, want %d", got, batchable)
	}
	wantFallback := uint64(len(nonBatchable)) + uint64(len(res))
	if got := sweepCellsFallback.Value() - f0; got != wantFallback {
		t.Errorf("fallback counter advanced %d, want %d", got, wantFallback)
	}
}

// TestSweepSpecsSingletonGroupFallsBack pins minBatchGroup: a group of
// one gains nothing from batching and must route per-cell.
func TestSweepSpecsSingletonGroupFallsBack(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	grid := func() []Spec {
		// Two cells with different step counts → two singleton groups.
		a := batchGrid(t, 200, nil)[:1]
		b := batchGrid(t, 300, nil)[:1]
		return append(a, b...)
	}
	b0, f0 := sweepCellsBatched.Value(), sweepCellsFallback.Value()
	runBothPaths(t, grid, SweepConfig{Workers: 1})
	if got := sweepCellsBatched.Value() - b0; got != 0 {
		t.Errorf("batched counter advanced %d, want 0", got)
	}
	if got := sweepCellsFallback.Value() - f0; got != 4 {
		t.Errorf("fallback counter advanced %d, want 4 (both cells, both legs)", got)
	}
}

// TestSweepSpecsDivergenceFailsFast asserts a diverging batched cell
// surfaces the same ErrDiverged failure the per-cell path produces.
func TestSweepSpecsDivergenceFailsFast(t *testing.T) {
	grid := func() []Spec {
		specs := batchGrid(t, 300, nil)
		cfg := fluid.Config{Infinite: true, PropDelay: 0.021, MaxWindow: math.Inf(1)}
		specs = append(specs, Spec{
			Substrate: &FluidSpec{
				Cfg: cfg,
				Senders: []fluid.Sender{
					{Proto: protocol.NewMIMD(10, 0.5), Init: 1e300},
					{Proto: protocol.NewMIMD(10, 0.5), Init: 1e300},
				},
				Steps: 300,
			},
		})
		return specs
	}
	for _, nobatch := range []bool{false, true} {
		_, err := SweepSpecs(context.Background(), grid(), SweepConfig{Workers: 1, NoBatch: nobatch})
		if err == nil {
			t.Fatalf("nobatch=%v: diverging grid returned nil error", nobatch)
		}
		var de *fluid.DivergedError
		if !errors.As(err, &de) {
			t.Fatalf("nobatch=%v: error %v is not a DivergedError", nobatch, err)
		}
	}
}

// stepCollector records every observed step, copying the reused Windows
// slice. It deliberately does NOT implement StripObserver, so on the
// batched path it exercises the per-step fallback (row gather) in the
// strip flush.
type stepCollector struct{ steps []Step }

func (c *stepCollector) Observe(st Step) {
	st.Windows = append([]float64(nil), st.Windows...)
	c.steps = append(c.steps, st)
}

// stripCollector implements StripObserver, expanding flow-major strips
// back into steps while checking the documented layout invariants.
type stripCollector struct {
	stepCollector
	strips int
	t      *testing.T
}

func (c *stripCollector) ObserveStrip(s Strip) {
	c.strips++
	if len(s.Windows) != s.Count*s.Flows {
		c.t.Errorf("strip Windows length %d, want Count×Flows = %d", len(s.Windows), s.Count*s.Flows)
	}
	for k := 0; k < s.Count; k++ {
		w := make([]float64, s.Flows)
		for i := 0; i < s.Flows; i++ {
			w[i] = s.Windows[i*s.Count+k]
		}
		c.steps = append(c.steps, Step{
			Index:   s.Start + k,
			Windows: w,
			Total:   s.Totals[k],
			RTT:     s.RTT[k],
			Loss:    s.Loss[k],
		})
	}
}

// TestSweepSpecsStripObserverEquivalence is the observer column of the
// golden matrix: the batched path must deliver the same step sequence
// whether an observer takes whole strips (flow-major columns), takes the
// per-step fallback, or runs on the per-cell path. 300 steps is not a
// multiple of emitStrip, so the final partial strip — column compaction
// and all — is exercised too, and the grid includes 3-sender cells so
// column strides differ across the group.
func TestSweepSpecsStripObserverEquivalence(t *testing.T) {
	const steps = 300
	run := func(nobatch, strip bool) ([][]Step, int) {
		specs := batchGrid(t, steps, nil)
		for _, n := range []int{3, 3} {
			senders, err := fluid.HomogeneousSenders(protocol.Reno(), n, []float64{1, 20, 40})
			if err != nil {
				t.Fatal(err)
			}
			cfg := fluidCfg()
			cfg.Seed = uint64(9000 + n)
			specs = append(specs, Spec{Substrate: &FluidSpec{Cfg: cfg, Senders: senders, Steps: steps}})
		}
		collectors := make([]*stripCollector, len(specs))
		for i := range specs {
			collectors[i] = &stripCollector{t: t}
			specs[i].Record = false
			if strip {
				specs[i].Observers = []Observer{collectors[i]}
			} else {
				specs[i].Observers = []Observer{&collectors[i].stepCollector}
			}
		}
		if _, err := SweepSpecs(context.Background(), specs, SweepConfig{Workers: 2, NoBatch: nobatch}); err != nil {
			t.Fatal(err)
		}
		out := make([][]Step, len(specs))
		strips := 0
		for i, c := range collectors {
			out[i] = c.steps
			strips += c.strips
		}
		return out, strips
	}

	base, _ := run(true, false) // per-cell path: one Observe per step
	for _, leg := range []struct {
		name  string
		strip bool
	}{{"fallback", false}, {"strip", true}} {
		got, strips := run(false, leg.strip)
		if leg.strip && strips == 0 {
			t.Fatal("strip leg delivered no strips; batched path not taken")
		}
		for i := range base {
			if len(got[i]) != len(base[i]) {
				t.Fatalf("%s leg cell %d: %d steps, want %d", leg.name, i, len(got[i]), len(base[i]))
			}
			for k := range base[i] {
				g, w := got[i][k], base[i][k]
				if g.Index != w.Index || g.Total != w.Total || g.RTT != w.RTT || g.Loss != w.Loss {
					t.Fatalf("%s leg cell %d step %d: %+v, want %+v", leg.name, i, k, g, w)
				}
				for f := range w.Windows {
					if math.Float64bits(g.Windows[f]) != math.Float64bits(w.Windows[f]) {
						t.Fatalf("%s leg cell %d step %d flow %d: window %v, want %v", leg.name, i, k, f, g.Windows[f], w.Windows[f])
					}
				}
			}
		}
	}
}

// TestRouteWorkers pins the auto-routing rules: explicit Workers wins;
// otherwise min(GOMAXPROCS, n) with a serial floor.
func TestRouteWorkers(t *testing.T) {
	cfg := SweepConfig{Workers: 3}
	routeWorkers(100, &cfg)
	if cfg.Workers != 3 {
		t.Fatalf("explicit Workers overridden to %d", cfg.Workers)
	}
	cfg = SweepConfig{}
	routeWorkers(1, &cfg)
	if cfg.Workers != 1 {
		t.Fatalf("1-cell grid routed to %d workers, want serial", cfg.Workers)
	}
	cfg = SweepConfig{}
	routeWorkers(0, &cfg)
	if cfg.Workers != 1 {
		t.Fatalf("empty grid routed to %d workers, want 1", cfg.Workers)
	}
	cfg = SweepConfig{}
	routeWorkers(1<<20, &cfg)
	if want := runtime.GOMAXPROCS(0); cfg.Workers != want {
		t.Fatalf("large grid routed to %d workers, want GOMAXPROCS=%d", cfg.Workers, want)
	}
}
